package grid

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"smartfeat/internal/experiments"
	"smartfeat/internal/fmgate"
	"smartfeat/internal/lease"
	"smartfeat/internal/obs"
)

// Status classifies a cell's scheduling outcome.
type Status string

const (
	// StatusCompleted: the cell executed and produced an artifact (possibly
	// holding a method-level failure — that is still a result).
	StatusCompleted Status = "completed"
	// StatusResumed: the cell's artifact was loaded from the run directory —
	// written by an earlier run (-resume) or by another worker of the same
	// distributed run.
	StatusResumed Status = "resumed"
	// StatusFailed: the cell's infrastructure errored (dataset load, store
	// wiring, artifact write) — locally, or on another worker per the shared
	// manifest.
	StatusFailed Status = "failed"
	// StatusSkipped: the cell never started (fail-fast after a failure, or
	// the run was already cancelled).
	StatusSkipped Status = "skipped"
	// StatusInterrupted: the cell was aborted mid-execution by cancellation;
	// no artifact is persisted, so resume reruns it.
	StatusInterrupted Status = "interrupted"
	// StatusLeased: the cell was held under another worker's live lease when
	// this process finished — in progress elsewhere. Only multi-worker runs
	// that stop early (cancellation, fail-fast) report it; a healthy worker
	// waits for the peer's artifact and resolves the cell to StatusResumed.
	StatusLeased Status = "leased"
)

// Outcome is one cell's scheduling result.
type Outcome struct {
	Cell     Cell
	Status   Status
	Artifact *Artifact // nil unless Completed/Resumed
	Err      error     // set for Failed (and Interrupted: the context error)
	Holder   string    // Leased: the worker id holding the cell's lease
}

// Runner schedules grid cells on a bounded worker pool. The zero value plus
// a Config is a usable in-memory engine; Dir adds artifact persistence and
// resume, Stores adds per-cell FM record/replay, Worker turns the run
// directory into a shared job queue that N independent processes drain
// concurrently.
type Runner struct {
	// Config is the shared evaluation protocol. Its Workers field bounds the
	// cell-level fan-out exactly like the pre-grid harness (0 = GOMAXPROCS,
	// 1 = sequential); per-cell seeding keeps results bit-identical at any
	// setting.
	Config experiments.Config
	// Dir is the run directory (artifacts + manifest). Empty disables
	// persistence.
	Dir string
	// Name labels the run in the manifest.
	Name string
	// Resume loads completed cells' artifacts from Dir and skips their
	// execution. Without Resume, an existing manifest in Dir is an error —
	// silently overwriting a half-finished run would discard paid-for cells.
	Resume bool
	// KeepGoing disables fail-fast: every cell runs even after one fails.
	KeepGoing bool
	// Stores shards FM record/replay per cell (optional).
	Stores *fmgate.StoreSet
	// Worker switches cell acquisition to filesystem leases under
	// Dir/leases: N processes with distinct Worker ids pointed at one Dir
	// drain the same plan concurrently, each executing only the cells it
	// claims. Completed-artifact presence always wins over any lease; cells
	// left by a crashed peer are reclaimed once its lease goes stale
	// (LeaseTTL); the shared manifest is merged under a cross-process lock.
	// A worker that finishes while peers still execute waits for their
	// artifacts and folds the full grid, so every worker can render the
	// complete tables. Requires Dir; implies join semantics (an existing
	// manifest with a matching config hash is continued, not refused).
	Worker string
	// LeaseTTL is the staleness threshold for peer leases (0 =
	// lease.DefaultTTL). Leases are heartbeated at TTL/3; a worker missing
	// heartbeats for TTL is presumed crashed and its cells are reclaimed.
	LeaseTTL time.Duration
	// Claimer overrides the cell-acquisition protocol (tests; custom
	// coordination backends). Nil selects lease.NewMem for single-process
	// runs and a lease.FileClaimer under Dir/leases for Worker mode.
	Claimer lease.Claimer
	// Logf, when set, receives one line per finished cell (progress UX for
	// long grid runs).
	Logf func(format string, args ...any)
}

// leasesDirName is the lease directory inside a run directory.
const leasesDirName = "leases"

// LeasesDir returns the lease directory of a run directory.
func LeasesDir(runDir string) string { return filepath.Join(runDir, leasesDirName) }

// RunResult is the outcome of a Run: per-cell outcomes in plan order plus
// the completed artifacts, with fold accessors for every table and figure.
type RunResult struct {
	Outcomes []Outcome
	byKey    map[string]*Outcome
}

// outcome returns the cell's outcome (nil if the cell was not in the plan).
func (r *RunResult) outcome(c Cell) *Outcome { return r.byKey[c.Key()] }

// Artifact returns the cell's artifact if it completed (live or resumed).
func (r *RunResult) Artifact(c Cell) (*Artifact, bool) {
	o := r.outcome(c)
	if o == nil || o.Artifact == nil {
		return nil, false
	}
	return o.Artifact, true
}

// Counts tallies outcomes per status.
func (r *RunResult) Counts() map[Status]int {
	m := make(map[Status]int)
	for i := range r.Outcomes {
		m[r.Outcomes[i].Status]++
	}
	return m
}

// Err aggregates the run's failures into an *experiments.RunError (nil when
// every cell completed). Interrupted runs unwrap to the context error; cells
// still held by other workers' live leases are reported as in progress
// elsewhere.
func (r *RunResult) Err() error {
	re := &experiments.RunError{}
	for i := range r.Outcomes {
		o := &r.Outcomes[i]
		switch o.Status {
		case StatusFailed:
			re.Failed = append(re.Failed, experiments.CellFailure{Dataset: o.Cell.Dataset, Method: o.Cell.Method, Err: o.Err})
		case StatusSkipped:
			re.Skipped = append(re.Skipped, o.Cell.String())
		case StatusInterrupted:
			re.Interrupted = append(re.Interrupted, o.Cell.String())
			if re.Cause == nil {
				re.Cause = o.Err
			}
		case StatusLeased:
			name := o.Cell.String()
			if o.Holder != "" {
				name += " (held by " + o.Holder + ")"
			}
			re.Elsewhere = append(re.Elsewhere, name)
		}
	}
	if len(re.Failed) == 0 && len(re.Skipped) == 0 && len(re.Interrupted) == 0 && len(re.Elsewhere) == 0 {
		return nil
	}
	return re
}

// runnerObs are one Run's contributors to the process-wide registry:
// executed-cell wall-clock and final statuses.
type runnerObs struct {
	cellSeconds *obs.Histogram
	byStatus    map[Status]*obs.Counter
}

func newRunnerObs() *runnerObs {
	ro := &runnerObs{
		cellSeconds: obs.NewHistogram(obs.TimeBuckets...),
		byStatus:    make(map[Status]*obs.Counter),
	}
	reg := obs.Default
	reg.RegisterHistogram("grid_cell_seconds", "Wall-clock seconds of executed grid cells.", ro.cellSeconds)
	for _, s := range []Status{StatusCompleted, StatusResumed, StatusFailed, StatusSkipped, StatusInterrupted, StatusLeased} {
		c := new(obs.Counter)
		reg.RegisterCounter("grid_cells_total", "Grid cells resolved, by final status.", c, "status", string(s))
		ro.byStatus[s] = c
	}
	return ro
}

// cell records one cell's final status.
func (ro *runnerObs) cell(s Status) {
	if c, ok := ro.byStatus[s]; ok {
		c.Inc()
	}
}

// runState carries the per-Run machinery shared by the scheduling passes.
type runState struct {
	res        *RunResult
	configHash string
	claimer    lease.Claimer
	workers    int
	failFast   atomic.Bool
	obs        *runnerObs

	// priorFailed snapshots the manifest's failure records as of Run start
	// (Worker mode). Only failures *newer* than the snapshot propagate
	// between workers: a failure from an earlier session stays retryable —
	// this worker re-executes it, exactly as single-process -resume would —
	// while a failure recorded by a live peer during this run is honored
	// without wasting a re-execution.
	priorFailed map[string]CellRecord

	manifest   *Manifest
	manifestMu sync.Mutex   // in-process serialization of manifest updates
	fileMu     *lease.Mutex // cross-process serialization (Worker mode)
}

// Run executes the plan. Completed cells are persisted (and, with Resume,
// loaded) under Dir; each cell's FM traffic goes through its own StoreSet
// shard when Stores is set. Cancelling ctx stops scheduling new cells,
// aborts in-flight FM calls, and leaves a resumable run directory.
//
// With Worker set, acquisition goes through filesystem leases: the plan is
// drained in passes — claim and execute what is free, load what peers
// completed, wait (polling) on what peers still hold — until every cell is
// resolved or the run stops early. The returned error is the same aggregate
// RunResult.Err reports; the RunResult is always returned, so callers can
// fold and render whatever subset of the grid completed.
func (r *Runner) Run(ctx context.Context, plan []Cell) (*RunResult, error) {
	res := &RunResult{Outcomes: make([]Outcome, len(plan)), byKey: make(map[string]*Outcome, len(plan))}
	for i, c := range plan {
		res.Outcomes[i] = Outcome{Cell: c, Status: StatusSkipped}
		if prev, dup := res.byKey[c.Key()]; dup {
			return res, fmt.Errorf("grid: duplicate cell %s in plan (also %s)", c, prev.Cell)
		}
		res.byKey[c.Key()] = &res.Outcomes[i]
	}
	distributed := r.Worker != ""
	if distributed && r.Dir == "" {
		return res, fmt.Errorf("grid: worker mode needs a run directory (the leases and artifacts are the coordination medium)")
	}

	st := &runState{res: res, configHash: r.Config.Fingerprint(), obs: newRunnerObs()}
	if r.Dir != "" {
		if err := os.MkdirAll(r.Dir, 0o755); err != nil {
			return res, fmt.Errorf("grid: creating run dir: %w", err)
		}
		if distributed {
			st.fileMu = lease.NewMutex(filepath.Join(r.Dir, manifestName+".lock"), r.LeaseTTL)
		}
		existing, err := LoadManifest(r.Dir)
		switch {
		case err == nil:
			if !r.Resume && !distributed {
				return res, fmt.Errorf("grid: run dir %s already holds a manifest; pass resume to continue it or pick a fresh directory", r.Dir)
			}
			if existing.ConfigHash != st.configHash {
				return res, fmt.Errorf("grid: run dir %s was produced under config %s, this run is %s — the cells would not be comparable; start a fresh run directory",
					r.Dir, existing.ConfigHash, st.configHash)
			}
			st.manifest = existing
		case errors.Is(err, os.ErrNotExist):
			st.manifest = newManifest(r.Name, st.configHash, r.Config.Seed)
			if err := r.saveManifest(st, func(m *Manifest) {}); err != nil {
				return res, err
			}
		default:
			return res, err
		}
	}

	// Resume: load completed cells before scheduling anything.
	if r.Dir != "" && r.Resume {
		for i := range res.Outcomes {
			o := &res.Outcomes[i]
			art, err := ReadArtifact(r.Dir, o.Cell, st.configHash)
			switch {
			case err == nil:
				o.Status, o.Artifact = StatusResumed, art
				r.logf("cell %-40s resumed from artifact", o.Cell)
			case errors.Is(err, os.ErrNotExist):
				// Not completed yet: runs below.
			default:
				return res, err
			}
		}
	}

	// Snapshot pre-existing failure records: they mark cells an *earlier*
	// session failed, which this run retries (like -resume); only failures
	// recorded after this point — by a live peer — short-circuit cells.
	if distributed {
		st.priorFailed = make(map[string]CellRecord)
		for k, rec := range st.manifest.Cells {
			if rec.Status == string(StatusFailed) {
				st.priorFailed[k] = rec
			}
		}
	}

	// Cell acquisition: a trivial in-memory claimer in single-process mode
	// (every claim granted, zero I/O — behavior identical to the pre-lease
	// engine), filesystem leases under Dir/leases in worker mode.
	st.claimer = r.Claimer
	if st.claimer == nil {
		if distributed {
			fc, err := lease.New(LeasesDir(r.Dir), lease.Options{Worker: r.Worker, TTL: r.LeaseTTL})
			if err != nil {
				return res, err
			}
			defer fc.Close()
			st.claimer = fc
		} else {
			st.claimer = lease.NewMem()
		}
	}

	// Concurrent recording workers each open shards only for their claimed
	// cells; the recording manifest's coverage list must merge across
	// processes under a lock of its own.
	if distributed && r.Stores != nil && !r.Stores.Replay() {
		r.Stores.SetLocker(lease.NewMutex(filepath.Join(r.Stores.Dir(), "manifest.json.lock"), r.LeaseTTL))
	}

	st.workers = r.Config.Workers
	if st.workers <= 0 {
		st.workers = runtime.GOMAXPROCS(0)
	}

	todo := make([]int, 0, len(plan))
	for i := range res.Outcomes {
		if res.Outcomes[i].Status != StatusResumed {
			todo = append(todo, i)
		}
	}
	poll := r.pollInterval()
	for {
		r.pass(ctx, st, todo, distributed)
		if !distributed {
			break
		}
		// Cells still under peers' live leases: wait for their artifacts (or
		// their leases to go stale) and re-scan, unless the run stopped.
		todo = todo[:0]
		for i := range res.Outcomes {
			if res.Outcomes[i].Status == StatusLeased {
				todo = append(todo, i)
			}
		}
		if len(todo) == 0 || ctx.Err() != nil || (!r.KeepGoing && st.failFast.Load()) {
			break
		}
		r.logf("waiting on %d cell(s) held by other workers", len(todo))
		select {
		case <-ctx.Done():
		case <-time.After(poll):
		}
	}

	// One increment per cell, on its final status (per-pass counting would
	// double-count cells that wait out a peer's lease and resolve later).
	for i := range res.Outcomes {
		st.obs.cell(res.Outcomes[i].Status)
	}

	err := res.Err()
	if err != nil {
		// A cancelled run may have only skipped cells (none caught mid-
		// flight); attach the context error so errors.Is(err,
		// context.Canceled) holds either way.
		var re *experiments.RunError
		if errors.As(err, &re) && re.Cause == nil {
			re.Cause = ctx.Err()
		}
	}
	return res, err
}

// pollInterval paces the wait-on-peers loop: fast enough to pick up a
// finished peer cell promptly, slow enough that idle waiting costs nothing
// next to cell compute.
func (r *Runner) pollInterval() time.Duration {
	ttl := r.LeaseTTL
	if ttl <= 0 {
		ttl = lease.DefaultTTL
	}
	poll := ttl / 6
	switch {
	case poll < 10*time.Millisecond:
		return 10 * time.Millisecond
	case poll > 5*time.Second:
		return 5 * time.Second
	}
	return poll
}

// pass schedules one sweep over the unresolved cells on the worker pool.
func (r *Runner) pass(ctx context.Context, st *runState, todo []int, distributed bool) {
	if len(todo) == 0 {
		return
	}
	// Failures recorded by other workers (shared manifest) resolve cells
	// without re-executing them and trigger cross-process fail-fast.
	var foreign map[string]CellRecord
	if distributed {
		if m, err := LoadManifest(r.Dir); err == nil {
			foreign = m.Cells
		}
	}
	experiments.ForEachIndex(st.workers, len(todo), func(j int) {
		o := &st.res.Outcomes[todo[j]]
		if ctx.Err() != nil || (!r.KeepGoing && st.failFast.Load()) {
			// A cell already observed under a peer's live lease stays
			// "in progress elsewhere" — it is running, not skipped.
			if o.Status != StatusLeased {
				o.Status = StatusSkipped
			}
			return
		}
		key := o.Cell.Key()
		if distributed {
			if r.loadPeerArtifact(st, o) {
				return
			}
			if rec, ok := foreign[key]; ok && rec.Status == string(StatusFailed) && !sameRecord(rec, st.priorFailed[key]) {
				o.Status, o.Holder = StatusFailed, ""
				o.Err = fmt.Errorf("grid: cell failed on worker %q: %s", rec.Worker, rec.Err)
				st.failFast.Store(true)
				r.logf("cell %-40s failed on worker %q", o.Cell, rec.Worker)
				return
			}
		}
		claim, ok, err := st.claimer.Claim(key)
		if err != nil {
			o.Status, o.Err = StatusFailed, err
			st.failFast.Store(true)
			r.logf("cell %-40s FAILED: %v", o.Cell, err)
			return
		}
		if !ok {
			o.Status = StatusLeased
			if info, held := st.claimer.Holder(key); held {
				o.Holder = info.Worker
			}
			r.logf("cell %-40s held by worker %q", o.Cell, o.Holder)
			return
		}
		defer claim.Release()
		// Completed-artifact presence always wins over any lease: the
		// previous holder may have finished between our artifact check and
		// the claim.
		if distributed && r.loadPeerArtifact(st, o) {
			return
		}
		r.executeClaimed(ctx, st, o)
	})
}

// sameRecord reports whether two manifest records describe the same event
// (CellRecord itself is not comparable since it carries the span-summary
// map; the identifying fields are enough to tell a prior-session failure
// from a fresh one).
func sameRecord(a, b CellRecord) bool {
	return a.Status == b.Status && a.Err == b.Err && a.FinishedAt == b.FinishedAt && a.Worker == b.Worker
}

// loadPeerArtifact resolves a cell from an artifact another worker (or an
// earlier run) committed. Unreadable artifacts fail the cell: silently
// re-executing would mask corruption.
func (r *Runner) loadPeerArtifact(st *runState, o *Outcome) bool {
	art, err := ReadArtifact(r.Dir, o.Cell, st.configHash)
	switch {
	case err == nil:
		o.Status, o.Artifact, o.Err, o.Holder = StatusResumed, art, nil, ""
		r.logf("cell %-40s loaded (completed by another worker)", o.Cell)
		return true
	case errors.Is(err, os.ErrNotExist):
		return false
	default:
		o.Status, o.Err = StatusFailed, err
		st.failFast.Store(true)
		r.logf("cell %-40s FAILED: %v", o.Cell, err)
		return true
	}
}

// executeClaimed runs one claimed cell and commits its outcome (artifact +
// manifest record). Each execution is one "cell" span; the span's bubbled-up
// counts (FM calls, CAAFE iterations, model fits under it) become the cell's
// manifest span summary when tracing is on.
func (r *Runner) executeClaimed(ctx context.Context, st *runState, o *Outcome) {
	start := time.Now()
	cctx, span := obs.StartSpan(ctx, "cell",
		obs.String("dataset", o.Cell.Dataset), obs.String("method", o.Cell.Method))
	art, err := r.executeCell(cctx, o.Cell, st.configHash)
	st.obs.cellSeconds.ObserveDuration(time.Since(start))
	spans := span.Counts()
	switch {
	case err != nil && isCancellation(err):
		o.Status, o.Err = StatusInterrupted, err
		r.logf("cell %-40s interrupted", o.Cell)
	case err != nil:
		o.Status, o.Err = StatusFailed, err
		st.failFast.Store(true)
		r.logf("cell %-40s FAILED: %v", o.Cell, err)
		if rerr := r.recordCell(st, o.Cell.Key(), CellRecord{Status: string(StatusFailed), Err: err.Error(), Spans: spans}); rerr != nil {
			o.Err = errors.Join(o.Err, rerr)
		}
	default:
		if r.Dir != "" {
			if werr := WriteArtifact(r.Dir, art); werr != nil {
				// Same reporting as an execution failure: the run paid
				// for this cell, so the log and manifest must say why it
				// is not in the results.
				o.Status, o.Err = StatusFailed, werr
				st.failFast.Store(true)
				r.logf("cell %-40s FAILED: %v", o.Cell, werr)
				if rerr := r.recordCell(st, o.Cell.Key(), CellRecord{Status: string(StatusFailed), Err: werr.Error(), Spans: spans}); rerr != nil {
					o.Err = errors.Join(o.Err, rerr)
				}
				span.SetAttr("status", string(o.Status))
				span.End()
				return
			}
		}
		o.Status, o.Artifact = StatusCompleted, art
		r.logf("cell %-40s completed", o.Cell)
		if rerr := r.recordCell(st, o.Cell.Key(), CellRecord{Status: string(StatusCompleted), Spans: spans}); rerr != nil {
			o.Status, o.Err = StatusFailed, rerr
			st.failFast.Store(true)
		}
	}
	span.SetAttr("status", string(o.Status))
	span.End()
}

// recordCell commits one cell's status line to the run manifest. The
// Dir check stands in for a manifest-presence check deliberately: the two
// are equivalent (Run sets st.manifest exactly when Dir is non-empty), and
// reading st.manifest here would race with saveManifest reassigning it
// under the lock.
func (r *Runner) recordCell(st *runState, key string, rec CellRecord) error {
	if r.Dir == "" {
		return nil
	}
	rec.FinishedAt = time.Now().UTC().Format(time.RFC3339)
	rec.Worker = r.Worker
	return r.saveManifest(st, func(m *Manifest) {
		m.Cells[key] = rec
	})
}

// saveManifest applies update to the manifest and rewrites it. In worker
// mode the read-merge-write cycle runs under the cross-process manifest
// lock, over a fresh load of the on-disk manifest, so concurrent workers
// never clobber each other's cell records.
func (r *Runner) saveManifest(st *runState, update func(*Manifest)) error {
	st.manifestMu.Lock()
	defer st.manifestMu.Unlock()
	if st.fileMu != nil {
		if err := st.fileMu.Lock(); err != nil {
			return err
		}
		defer st.fileMu.Unlock()
		if disk, err := LoadManifest(r.Dir); err == nil {
			if disk.ConfigHash != st.manifest.ConfigHash {
				return fmt.Errorf("grid: run dir %s manifest drifted to config %s mid-run (ours: %s)",
					r.Dir, disk.ConfigHash, st.manifest.ConfigHash)
			}
			disk.Name = st.manifest.Name
			st.manifest = disk
		}
	}
	update(st.manifest)
	return st.manifest.save(r.Dir)
}

// executeCell dispatches one cell to the experiments layer, wiring its FM
// shard first. The error covers cell infrastructure and interruption;
// method-level failures come back inside the artifact.
func (r *Runner) executeCell(ctx context.Context, c Cell, configHash string) (*Artifact, error) {
	cfg := r.Config
	if r.Stores != nil {
		if cfg.FMDiskCache != nil && !r.Stores.Replay() {
			// Exclude the shard we are about to truncate and record into
			// BEFORE it is created: the disk tier must never ingest this
			// process's own in-progress appends back into its index.
			cfg.FMDiskCache.Exclude(filepath.Join(r.Stores.Dir(), c.Key()+".jsonl"))
		}
		shard, err := r.Stores.Shard(c.Key())
		if err != nil {
			return nil, err
		}
		cfg.FMStore = shard
		cfg.FMStoreReplay = r.Stores.Replay()
		if cfg.FMStoreReplay {
			cfg.FMDiskCache = nil // replaying cells have an exact, cheaper source
		}
	}
	art := &Artifact{Cell: c, ConfigHash: configHash}
	switch {
	case strings.HasPrefix(c.Method, prefixTable6):
		row, err := experiments.Table6Cell(ctx, c.Dataset, strings.TrimPrefix(c.Method, prefixTable6), cfg)
		if err != nil {
			return nil, err
		}
		art.Kind, art.Table6 = "table6", &row
	case strings.HasPrefix(c.Method, prefixTable7):
		row, err := experiments.Table7Cell(ctx, c.Dataset, strings.TrimPrefix(c.Method, prefixTable7), cfg)
		if err != nil {
			return nil, err
		}
		art.Kind, art.Table7 = "table7", &row
	case strings.HasPrefix(c.Method, prefixFigure1):
		size, err := parseFigure1Size(c.Method)
		if err != nil {
			return nil, err
		}
		point, err := experiments.Figure1Cell(ctx, size, cfg)
		if err != nil {
			return nil, err
		}
		art.Kind, art.Figure1 = "figure1", &point
	case strings.HasPrefix(c.Method, prefixDescriptions):
		res, err := experiments.DescriptionsCell(ctx, c.Dataset, c.Method == descriptionsWith, cfg)
		if err != nil {
			return nil, err
		}
		art.Kind, art.Method = "method", newMethodArtifact(res)
	default:
		res, err := experiments.RunCell(ctx, c.Dataset, c.Method, cfg)
		if err != nil {
			return nil, err
		}
		if res.Interrupted() {
			return nil, res.Err
		}
		art.Kind, art.Method = "method", newMethodArtifact(res)
	}
	return art, nil
}

// isCancellation reports whether err stems from context cancellation.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

func (r *Runner) logf(format string, args ...any) {
	if r.Logf != nil {
		r.Logf(format, args...)
	}
}
