package grid

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"smartfeat/internal/fmgate"
	"smartfeat/internal/lease"
)

// CompactReport summarizes one Compact sweep.
type CompactReport struct {
	// Kept lists the run directories retained, newest first per config hash.
	Kept []string
	// RemovedRuns lists the run directories deleted by the retention policy.
	RemovedRuns []string
	// RemovedLeases lists orphaned lease files (and reap tombstones) swept
	// out of the kept runs.
	RemovedLeases []string
	// RemovedCacheFiles lists live cache shards evicted by the size cap and
	// orphaned cache-index snapshots swept out of shard directories.
	RemovedCacheFiles []string
	// CacheBytesFreed totals the bytes released by the cache sweep.
	CacheBytesFreed int64
}

// CompactOptions configures a Compact sweep.
type CompactOptions struct {
	// KeepN is how many runs to retain per config hash (must be ≥ 1).
	KeepN int
	// TTL is the lease/live-shard staleness horizon; ≤ 0 defaults to
	// lease.DefaultTTL. Pass the TTL your workers run with.
	TTL time.Duration
	// CacheMB caps each shard directory's total *.jsonl bytes. When a
	// directory exceeds it, stale live-* cache shards (mtime older than TTL
	// — a fresh mtime means a worker is actively appending) are evicted
	// oldest-first until under the cap. Cell shards are replay artifacts
	// and are never touched; ≤ 0 disables the cap.
	CacheMB int
}

// Compact applies the retention policy to a root directory of run
// directories (each a Runner.Dir holding a manifest): per config hash, the
// newest keepN runs are kept and older ones deleted — artifacts are
// append-only during a run, so without a policy long-lived deployments grow
// without bound. Within the kept runs, orphaned lease files are swept: a
// lease whose cell already has a completed artifact (completion always wins
// over any lease), a lease stale beyond ttl (its worker is gone — the cells
// are reclaimable anyway, and after the run ends nobody will), and leftover
// reap tombstones. Live leases — fresh heartbeats, no artifact — are never
// touched, so compacting a root with an active multi-worker run is safe: the
// active run is by definition the newest of its hash.
//
// Directories under root carrying an fmgate shard manifest (FM recordings,
// completion-cache dirs) get the cache sweep instead: orphaned cache-index
// snapshots are removed, and — with CacheMB set — stale live-* cache shards
// are evicted oldest-first until the directory fits the cap. Entries that are
// neither run nor shard directories are left alone.
func Compact(root string, opts CompactOptions) (*CompactReport, error) {
	keepN, ttl := opts.KeepN, opts.TTL
	if keepN < 1 {
		return nil, fmt.Errorf("grid: compact keepN must be ≥ 1 (got %d)", keepN)
	}
	if ttl <= 0 {
		ttl = lease.DefaultTTL
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("grid: compacting %s: %w", root, err)
	}
	type run struct {
		dir  string
		hash string
		when time.Time
	}
	byHash := make(map[string][]run)
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(root, e.Name())
		m, err := LoadManifest(dir)
		if err != nil {
			continue // not a run directory (FM shards, scratch, …)
		}
		byHash[m.ConfigHash] = append(byHash[m.ConfigHash], run{dir: dir, hash: m.ConfigHash, when: manifestTime(dir, m)})
	}
	rep := &CompactReport{}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(root, e.Name())
		if _, err := LoadManifest(dir); err == nil {
			continue // run directories are handled by retention below
		}
		sm, err := fmgate.ReadStoreSetManifest(dir)
		if err != nil {
			continue // neither a run nor a shard directory: leave alone
		}
		removed, freed, err := sweepCache(dir, sm, ttl, opts.CacheMB)
		if err != nil {
			return rep, err
		}
		rep.RemovedCacheFiles = append(rep.RemovedCacheFiles, removed...)
		rep.CacheBytesFreed += freed
	}
	for _, runs := range byHash {
		sort.Slice(runs, func(i, j int) bool {
			if !runs[i].when.Equal(runs[j].when) {
				return runs[i].when.After(runs[j].when)
			}
			return runs[i].dir > runs[j].dir // deterministic tie-break
		})
		for i, r := range runs {
			if i < keepN {
				rep.Kept = append(rep.Kept, r.dir)
				swept, err := sweepLeases(r.dir, ttl)
				if err != nil {
					return rep, err
				}
				rep.RemovedLeases = append(rep.RemovedLeases, swept...)
				continue
			}
			if err := os.RemoveAll(r.dir); err != nil {
				return rep, fmt.Errorf("grid: removing expired run %s: %w", r.dir, err)
			}
			rep.RemovedRuns = append(rep.RemovedRuns, r.dir)
		}
	}
	sort.Strings(rep.Kept)
	sort.Strings(rep.RemovedRuns)
	sort.Strings(rep.RemovedLeases)
	sort.Strings(rep.RemovedCacheFiles)
	return rep, nil
}

// sweepCache applies the completion-cache retention policy to one shard
// directory: enforce the size cap by evicting stale live-* shards, then
// remove a cache-index snapshot the directory's contents no longer match.
func sweepCache(dir string, sm fmgate.StoreSetManifest, ttl time.Duration, cacheMB int) (removed []string, freed int64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, fmt.Errorf("grid: sweeping cache dir %s: %w", dir, err)
	}
	type shard struct {
		path  string
		size  int64
		mtime time.Time
		live  bool
	}
	var shards []shard
	var total int64
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".jsonl") {
			continue
		}
		st, err := e.Info()
		if err != nil {
			continue
		}
		shards = append(shards, shard{
			path:  filepath.Join(dir, e.Name()),
			size:  st.Size(),
			mtime: st.ModTime(),
			live:  strings.HasPrefix(e.Name(), fmgate.CacheLivePrefix),
		})
		total += st.Size()
	}
	if cap := int64(cacheMB) << 20; cacheMB > 0 && total > cap {
		// Oldest stale live shards go first; cell shards and live shards
		// with a fresh heartbeat (mtime within ttl: a worker is appending
		// right now) are never candidates.
		var victims []shard
		for _, s := range shards {
			if s.live && time.Since(s.mtime) > ttl {
				victims = append(victims, s)
			}
		}
		sort.Slice(victims, func(i, j int) bool {
			if !victims[i].mtime.Equal(victims[j].mtime) {
				return victims[i].mtime.Before(victims[j].mtime)
			}
			return victims[i].path < victims[j].path
		})
		for _, v := range victims {
			if total <= cap {
				break
			}
			if err := os.Remove(v.path); err != nil && !os.IsNotExist(err) {
				return removed, freed, fmt.Errorf("grid: evicting cache shard %s: %w", v.path, err)
			}
			total -= v.size
			freed += v.size
			removed = append(removed, v.path)
		}
	}
	// Orphan index sweep: the snapshot is pure bookkeeping, so anything the
	// directory no longer backs — hash drift, files evicted above or by a
	// re-record, plain corruption — gets removed rather than repaired.
	idxPath := filepath.Join(dir, fmgate.CacheIndexName)
	idx, ierr := fmgate.ReadCacheIndex(dir)
	if os.IsNotExist(ierr) {
		return removed, freed, nil
	}
	orphan := ierr != nil
	if ierr == nil {
		if idx.ConfigHash != "" && sm.ConfigHash != "" && idx.ConfigHash != sm.ConfigHash {
			orphan = true
		}
		for name := range idx.Files {
			if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
				orphan = true
				break
			}
		}
	}
	if orphan {
		var size int64
		if st, err := os.Stat(idxPath); err == nil {
			size = st.Size()
		}
		if err := os.Remove(idxPath); err != nil && !os.IsNotExist(err) {
			return removed, freed, fmt.Errorf("grid: removing orphaned cache index %s: %w", idxPath, err)
		}
		removed = append(removed, idxPath)
		freed += size
	}
	return removed, freed, nil
}

// sweepLeases removes a kept run's orphaned lease files.
func sweepLeases(runDir string, ttl time.Duration) ([]string, error) {
	dir := LeasesDir(runDir)
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("grid: sweeping leases of %s: %w", runDir, err)
	}
	var removed []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		path := filepath.Join(dir, e.Name())
		key, isLease := strings.CutSuffix(e.Name(), ".lease")
		orphan := false
		switch {
		case !isLease:
			// Reap tombstones (<key>.lease.reap-<worker>) and strays: a
			// tombstone outliving its reaper's claim attempt is garbage.
			orphan = true
		default:
			if _, err := os.Stat(filepath.Join(runDir, key+".json")); err == nil {
				orphan = true // completed artifact wins over any lease
			} else if st, err := os.Stat(path); err == nil && time.Since(st.ModTime()) > ttl {
				orphan = true // holder stopped heartbeating: nobody owns this
			}
		}
		if !orphan {
			continue
		}
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return removed, fmt.Errorf("grid: removing orphaned lease %s: %w", path, err)
		}
		removed = append(removed, path)
	}
	return removed, nil
}

// manifestTime orders runs for retention: manifest UpdatedAt, falling back
// to CreatedAt, falling back to the directory's mtime.
func manifestTime(dir string, m *Manifest) time.Time {
	for _, stamp := range []string{m.UpdatedAt, m.CreatedAt} {
		if ts, err := time.Parse(time.RFC3339, stamp); err == nil {
			return ts
		}
	}
	if st, err := os.Stat(dir); err == nil {
		return st.ModTime()
	}
	return time.Time{}
}
