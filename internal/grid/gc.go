package grid

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"smartfeat/internal/lease"
)

// CompactReport summarizes one Compact sweep.
type CompactReport struct {
	// Kept lists the run directories retained, newest first per config hash.
	Kept []string
	// RemovedRuns lists the run directories deleted by the retention policy.
	RemovedRuns []string
	// RemovedLeases lists orphaned lease files (and reap tombstones) swept
	// out of the kept runs.
	RemovedLeases []string
}

// Compact applies the retention policy to a root directory of run
// directories (each a Runner.Dir holding a manifest): per config hash, the
// newest keepN runs are kept and older ones deleted — artifacts are
// append-only during a run, so without a policy long-lived deployments grow
// without bound. Within the kept runs, orphaned lease files are swept: a
// lease whose cell already has a completed artifact (completion always wins
// over any lease), a lease stale beyond ttl (its worker is gone — the cells
// are reclaimable anyway, and after the run ends nobody will), and leftover
// reap tombstones. Live leases — fresh heartbeats, no artifact — are never
// touched, so compacting a root with an active multi-worker run is safe: the
// active run is by definition the newest of its hash.
//
// Entries under root that do not parse as run directories (no manifest —
// e.g. FM recording directories) are left alone. ttl ≤ 0 defaults to
// lease.DefaultTTL; callers should pass the TTL their workers run with.
func Compact(root string, keepN int, ttl time.Duration) (*CompactReport, error) {
	if keepN < 1 {
		return nil, fmt.Errorf("grid: compact keepN must be ≥ 1 (got %d)", keepN)
	}
	if ttl <= 0 {
		ttl = lease.DefaultTTL
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("grid: compacting %s: %w", root, err)
	}
	type run struct {
		dir  string
		hash string
		when time.Time
	}
	byHash := make(map[string][]run)
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(root, e.Name())
		m, err := LoadManifest(dir)
		if err != nil {
			continue // not a run directory (FM shards, scratch, …)
		}
		byHash[m.ConfigHash] = append(byHash[m.ConfigHash], run{dir: dir, hash: m.ConfigHash, when: manifestTime(dir, m)})
	}
	rep := &CompactReport{}
	for _, runs := range byHash {
		sort.Slice(runs, func(i, j int) bool {
			if !runs[i].when.Equal(runs[j].when) {
				return runs[i].when.After(runs[j].when)
			}
			return runs[i].dir > runs[j].dir // deterministic tie-break
		})
		for i, r := range runs {
			if i < keepN {
				rep.Kept = append(rep.Kept, r.dir)
				swept, err := sweepLeases(r.dir, ttl)
				if err != nil {
					return rep, err
				}
				rep.RemovedLeases = append(rep.RemovedLeases, swept...)
				continue
			}
			if err := os.RemoveAll(r.dir); err != nil {
				return rep, fmt.Errorf("grid: removing expired run %s: %w", r.dir, err)
			}
			rep.RemovedRuns = append(rep.RemovedRuns, r.dir)
		}
	}
	sort.Strings(rep.Kept)
	sort.Strings(rep.RemovedRuns)
	sort.Strings(rep.RemovedLeases)
	return rep, nil
}

// sweepLeases removes a kept run's orphaned lease files.
func sweepLeases(runDir string, ttl time.Duration) ([]string, error) {
	dir := LeasesDir(runDir)
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("grid: sweeping leases of %s: %w", runDir, err)
	}
	var removed []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		path := filepath.Join(dir, e.Name())
		key, isLease := strings.CutSuffix(e.Name(), ".lease")
		orphan := false
		switch {
		case !isLease:
			// Reap tombstones (<key>.lease.reap-<worker>) and strays: a
			// tombstone outliving its reaper's claim attempt is garbage.
			orphan = true
		default:
			if _, err := os.Stat(filepath.Join(runDir, key+".json")); err == nil {
				orphan = true // completed artifact wins over any lease
			} else if st, err := os.Stat(path); err == nil && time.Since(st.ModTime()) > ttl {
				orphan = true // holder stopped heartbeating: nobody owns this
			}
		}
		if !orphan {
			continue
		}
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return removed, fmt.Errorf("grid: removing orphaned lease %s: %w", path, err)
		}
		removed = append(removed, path)
	}
	return removed, nil
}

// manifestTime orders runs for retention: manifest UpdatedAt, falling back
// to CreatedAt, falling back to the directory's mtime.
func manifestTime(dir string, m *Manifest) time.Time {
	for _, stamp := range []string{m.UpdatedAt, m.CreatedAt} {
		if ts, err := time.Parse(time.RFC3339, stamp); err == nil {
			return ts
		}
	}
	if st, err := os.Stat(dir); err == nil {
		return st.ModTime()
	}
	return time.Time{}
}
