package grid

import (
	"strconv"

	"smartfeat/internal/experiments"
)

// methodCellState maps a cell's outcome to the experiments fold vocabulary.
func (r *RunResult) methodCellState(dataset, method string) (experiments.MethodResult, experiments.CellState) {
	o := r.outcome(Cell{Dataset: dataset, Method: method})
	if o == nil {
		return experiments.MethodResult{}, experiments.CellSkipped
	}
	switch o.Status {
	case StatusCompleted, StatusResumed:
		if o.Artifact == nil || o.Artifact.Method == nil {
			return experiments.MethodResult{}, experiments.CellFailed
		}
		return o.Artifact.Method.Result(method), experiments.CellCompleted
	case StatusFailed:
		return experiments.MethodResult{}, experiments.CellFailed
	case StatusLeased:
		return experiments.MethodResult{}, experiments.CellElsewhere
	default: // skipped, interrupted
		return experiments.MethodResult{}, experiments.CellSkipped
	}
}

// Comparison folds Tables 4/5 over the plan's completed comparison cells.
// Failed and skipped cells surface as the tables' distinct miss markers.
func (r *RunResult) Comparison(datasets []string, cfg experiments.Config) (avg, median *experiments.ComparisonTable) {
	return experiments.ComparisonFromCells(datasets, cfg, r.methodCellState)
}

// Efficiency folds the per-method timing/traffic table from the comparison
// cells' artifacts — the per-cell cost accounting of a recorded, replayed or
// resumed run, without re-executing anything. Cells without artifacts are
// left out.
func (r *RunResult) Efficiency(datasets []string) []experiments.EfficiencyRow {
	return experiments.EfficiencyFromCells(datasets, func(dataset, method string) (experiments.MethodResult, bool) {
		res, state := r.methodCellState(dataset, method)
		return res, state == experiments.CellCompleted
	})
}

// Table6 folds the feature-importance table from the per-method table6
// cells. ok is false unless every method's cell completed.
func (r *RunResult) Table6(dataset string) ([]experiments.ImportanceRow, bool) {
	rows := make([]experiments.ImportanceRow, 0, len(experiments.Methods()))
	for _, m := range experiments.Methods() {
		art, found := r.Artifact(Cell{Dataset: dataset, Method: prefixTable6 + m})
		if !found || art.Table6 == nil {
			return nil, false
		}
		rows = append(rows, *art.Table6)
	}
	return rows, true
}

// Table7 folds the operator ablation from the per-configuration cells.
func (r *RunResult) Table7(dataset string) ([]experiments.AblationRow, bool) {
	rows := make([]experiments.AblationRow, 0, len(experiments.Table7Configs()))
	for _, c := range experiments.Table7Configs() {
		art, found := r.Artifact(Cell{Dataset: dataset, Method: prefixTable7 + c})
		if !found || art.Table7 == nil {
			return nil, false
		}
		rows = append(rows, *art.Table7)
	}
	return rows, true
}

// Figure1 folds the interaction-cost series from the per-size cells.
func (r *RunResult) Figure1(sizes []int) ([]experiments.InteractionCost, bool) {
	points := make([]experiments.InteractionCost, 0, len(sizes))
	for _, n := range sizes {
		art, found := r.Artifact(Cell{Dataset: experiments.Figure1Dataset, Method: prefixFigure1 + strconv.Itoa(n)})
		if !found || art.Figure1 == nil {
			return nil, false
		}
		points = append(points, *art.Figure1)
	}
	return points, true
}

// Descriptions folds the §4.2 feature-description ablation from its two
// cells.
func (r *RunResult) Descriptions(dataset string) (*experiments.DescriptionsAblation, bool) {
	full, okFull := r.Artifact(Cell{Dataset: dataset, Method: descriptionsWith})
	names, okNames := r.Artifact(Cell{Dataset: dataset, Method: descriptionsNames})
	if !okFull || !okNames || full.Method == nil || names.Method == nil {
		return nil, false
	}
	return experiments.DescriptionsAblationFromCells(dataset,
		full.Method.Result(experiments.MethodSmartfeat),
		names.Method.Result(experiments.MethodSmartfeat)), true
}
