package grid

import (
	"context"
	"fmt"
	"testing"

	"smartfeat/internal/experiments"
	"smartfeat/internal/fm"
	"smartfeat/internal/fmgate"
	"smartfeat/internal/lease"
)

// benchArtifact is a representative comparison-cell artifact: five model
// AUCs, a few generated columns, full FM accounting.
func benchArtifact() *Artifact {
	return &Artifact{
		Cell:       Cell{Dataset: "Bank", Method: experiments.MethodSmartfeat},
		Kind:       "method",
		ConfigHash: "0123456789abcdef",
		Method: &MethodArtifact{
			AUCs:         map[string]float64{"LR": 88.1, "NB": 84.2, "RF": 90.3, "ET": 89.9, "DNN": 87.5},
			FailedModels: map[string]string{},
			Generated:    23,
			Selected:     9,
			NewColumns:   []string{"Bucketize_Age", "Ratio_Balance_Duration", "GroupBy_Job_Mean_Balance"},
			ElapsedNS:    123456789,
			FMUsage:      fm.Usage{Calls: 41, PromptTokens: 9000, CompletionTokens: 2100, SimCostUSD: 0.41},
			FMMetrics:    fmgate.Metrics{Requests: 41, UpstreamCalls: 30, CacheHits: 11},
		},
	}
}

// BenchmarkArtifactWrite measures serializing + atomically committing one
// cell artifact — the per-cell overhead the grid engine adds to every
// completed cell.
func BenchmarkArtifactWrite(b *testing.B) {
	dir := b.TempDir()
	art := benchArtifact()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteArtifact(dir, art); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkArtifactRead measures loading one artifact — the per-cell cost of
// -resume.
func BenchmarkArtifactRead(b *testing.B) {
	dir := b.TempDir()
	art := benchArtifact()
	if err := WriteArtifact(dir, art); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadArtifact(dir, art.Cell, art.ConfigHash); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkManifestSave measures the per-cell manifest rewrite at full-grid
// size (8 datasets × 5 methods plus the auxiliary cells).
func BenchmarkManifestSave(b *testing.B) {
	dir := b.TempDir()
	m := newManifest("bench", "0123456789abcdef", 2024)
	for d := 0; d < 8; d++ {
		for _, method := range experiments.ComparisonMethods() {
			c := Cell{Dataset: fmt.Sprintf("dataset-%d", d), Method: method}
			m.Cells[c.Key()] = CellRecord{Status: "completed", FinishedAt: "2026-07-29T00:00:00Z"}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.save(dir); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGridResume measures a full resume pass over a 40-cell run
// directory: manifest load + every artifact read + fold into Tables 4/5 —
// the fixed cost of restarting an interrupted full-grid run.
func BenchmarkGridResume(b *testing.B) {
	cfg := experiments.QuickConfig()
	dir := b.TempDir()
	var names []string
	for d := 0; d < 8; d++ {
		names = append(names, fmt.Sprintf("dataset-%d", d))
	}
	plan := ComparisonPlan(names, nil)
	for _, c := range plan {
		art := benchArtifact()
		art.Cell = c
		art.ConfigHash = cfg.Fingerprint()
		if err := WriteArtifact(dir, art); err != nil {
			b.Fatal(err)
		}
	}
	m := newManifest("bench", cfg.Fingerprint(), cfg.Seed)
	if err := m.save(dir); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := &Runner{Config: cfg, Dir: dir, Resume: true}
		res, err := r.Run(context.Background(), plan)
		if err != nil {
			b.Fatal(err)
		}
		if c := res.Counts(); c[StatusResumed] != len(plan) {
			b.Fatalf("counts = %v", c)
		}
		avg, _ := res.Comparison(names, cfg)
		if avg == nil {
			b.Fatal("no fold")
		}
	}
	b.ReportMetric(float64(len(plan)), "cells/op")
}

// BenchmarkLeaseClaim measures one claim/release cycle through the
// filesystem lease protocol — the per-cell coordination overhead worker
// mode adds on top of single-process scheduling (two syscall-bound file
// operations; it must stay invisible next to cell compute).
func BenchmarkLeaseClaim(b *testing.B) {
	fc, err := lease.New(b.TempDir(), lease.Options{Worker: "bench"})
	if err != nil {
		b.Fatal(err)
	}
	defer fc.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl, ok, err := fc.Claim("Bank__SMARTFEAT")
		if err != nil || !ok {
			b.Fatalf("claim: ok=%v err=%v", ok, err)
		}
		if err := cl.Release(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreSetShard measures opening a shard in record mode (file
// create + manifest rewrite) — the per-cell setup cost of -fm-record.
func BenchmarkStoreSetShard(b *testing.B) {
	set, err := fmgate.NewRecordStoreSet(b.TempDir(), fmgate.StoreSetManifest{ConfigHash: "bench"})
	if err != nil {
		b.Fatal(err)
	}
	defer set.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := set.Shard(fmt.Sprintf("cell-%d", i)); err != nil {
			b.Fatal(err)
		}
	}
}
