// Package grid is the resumable run engine for the paper's evaluation grid.
// The experiments package knows how to execute one *cell* — one
// (dataset × method) unit of Tables 4/5 and the efficiency study, one
// per-method Table 6 row, one Table 7 ablation column, one Figure 1 size
// point — and how to fold completed cells back into tables. This package
// owns everything between those two layers:
//
//   - a Runner that schedules cells on a bounded worker pool with per-cell
//     seeding (bit-identical to sequential execution at any worker count),
//     fail-fast that distinguishes failed from skipped cells, and prompt
//     reaction to cancellation;
//   - a run directory (runs/<name>/): one JSON artifact per completed cell
//     (<dataset>__<method>.json) plus a manifest recording the config hash
//     and per-cell status, so an interrupted run resumes incrementally —
//     completed cells load from disk, everything else reruns;
//   - per-cell FM record/replay via fmgate.StoreSet: each cell's foundation-
//     model traffic lands in its own shard (fm/<dataset>__<method>.jsonl),
//     so one recorded grid run replays any subset — a single cell included —
//     at zero simulated cost.
//
// Tables and figures are assembled as pure folds over completed artifacts
// (see RunResult's accessors), so a resumed, replayed or partially-failed
// run renders exactly the cells it has.
package grid

import (
	"fmt"
	"strconv"
	"strings"

	"smartfeat/internal/experiments"
)

// Cell identifies one unit of the evaluation grid. Dataset names a built-in
// dataset ("Tennis") or a pseudo-dataset scope; Method is either a
// comparison method ("SMARTFEAT", "Initial AUC", …) or a prefixed auxiliary
// cell kind ("table6:SMARTFEAT", "table7:+Unary", "figure1:1000",
// "descriptions:with").
type Cell struct {
	Dataset string `json:"dataset"`
	Method  string `json:"method"`
}

// String renders the cell for humans and error messages.
func (c Cell) String() string { return c.Dataset + " × " + c.Method }

// Key is the cell's filesystem-safe identity: artifact filenames
// (<key>.json) and FM shard filenames (<key>.jsonl) both derive from it.
func (c Cell) Key() string { return sanitize(c.Dataset) + "__" + sanitize(c.Method) }

// sanitize maps a name component onto the filesystem-safe alphabet; every
// byte outside it becomes '-'. The substitution is lossy in principle (two
// methods differing only in ':' vs ' ' would share a key), so Runner.Run
// rejects plans whose cells collide on Key() rather than letting their
// artifacts or shards silently overwrite each other.
func sanitize(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '+', c == '-':
			b.WriteByte(c)
		default:
			b.WriteByte('-')
		}
	}
	return b.String()
}

// Auxiliary-cell method prefixes.
const (
	prefixTable6       = "table6:"
	prefixTable7       = "table7:"
	prefixFigure1      = "figure1:"
	prefixDescriptions = "descriptions:"

	descriptionsWith  = prefixDescriptions + "with"
	descriptionsNames = prefixDescriptions + "names-only"
)

// ComparisonPlan spans the full (dataset × method) comparison grid: for each
// dataset, the initial evaluation plus every method, in table order. methods
// restricts the method set (nil = all of experiments.ComparisonMethods).
func ComparisonPlan(datasets, methods []string) []Cell {
	if methods == nil {
		methods = experiments.ComparisonMethods()
	}
	cells := make([]Cell, 0, len(datasets)*len(methods))
	for _, d := range datasets {
		for _, m := range methods {
			cells = append(cells, Cell{Dataset: d, Method: m})
		}
	}
	return cells
}

// Table6Plan spans the per-method feature-importance cells on one dataset.
func Table6Plan(dataset string) []Cell {
	cells := make([]Cell, 0, len(experiments.Methods()))
	for _, m := range experiments.Methods() {
		cells = append(cells, Cell{Dataset: dataset, Method: prefixTable6 + m})
	}
	return cells
}

// Table7Plan spans the per-configuration operator-ablation cells.
func Table7Plan(dataset string) []Cell {
	cells := make([]Cell, 0, len(experiments.Table7Configs()))
	for _, c := range experiments.Table7Configs() {
		cells = append(cells, Cell{Dataset: dataset, Method: prefixTable7 + c})
	}
	return cells
}

// Figure1Plan spans the per-size interaction-cost cells.
func Figure1Plan(sizes []int) []Cell {
	cells := make([]Cell, 0, len(sizes))
	for _, n := range sizes {
		cells = append(cells, Cell{Dataset: experiments.Figure1Dataset, Method: prefixFigure1 + strconv.Itoa(n)})
	}
	return cells
}

// DescriptionsPlan spans the two §4.2 feature-description ablation cells.
func DescriptionsPlan(dataset string) []Cell {
	return []Cell{
		{Dataset: dataset, Method: descriptionsWith},
		{Dataset: dataset, Method: descriptionsNames},
	}
}

// parseFigure1Size extracts the row count from a "figure1:<n>" method.
func parseFigure1Size(method string) (int, error) {
	raw := strings.TrimPrefix(method, prefixFigure1)
	n, err := strconv.Atoi(raw)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("grid: bad figure1 cell size %q", raw)
	}
	return n, nil
}
