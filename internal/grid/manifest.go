package grid

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"smartfeat/internal/jsonio"
)

// manifestName is the run-directory manifest file.
const manifestName = "manifest.json"

// manifestVersion is the on-disk manifest format version.
const manifestVersion = 1

// CellRecord is one cell's status line in the run manifest.
type CellRecord struct {
	// Status is "completed" or "failed". Skipped and interrupted cells are
	// deliberately absent: they hold no result, so resume reruns them.
	Status string `json:"status"`
	// Err carries the failure reason for failed cells.
	Err string `json:"err,omitempty"`
	// FinishedAt stamps the cell (RFC 3339).
	FinishedAt string `json:"finished_at,omitempty"`
	// Worker names the worker that resolved the cell (multi-worker runs;
	// empty for single-process runs). Peers use failure records to skip
	// re-executing a cell that already failed elsewhere.
	Worker string `json:"worker,omitempty"`
	// Spans summarizes the cell's trace when the run was traced: span name →
	// count of spans completed under the cell (fm.call, fm.attempt,
	// caafe.iter, ml.fit, plus outcome counters the spans bubble up). Only
	// counts — never timestamps — so traced and untraced manifests differ
	// solely by this deterministic field.
	Spans map[string]int64 `json:"spans,omitempty"`
}

// Manifest describes a run directory: which configuration produced it and
// how far it got. It is rewritten after every cell, so a run killed at any
// point leaves an accurate progress record for -resume (the artifacts
// themselves are the source of truth for results; the manifest adds the
// config-hash gate and human-readable progress).
type Manifest struct {
	Version    int                   `json:"version"`
	Name       string                `json:"name,omitempty"`
	ConfigHash string                `json:"config_hash"`
	Seed       int64                 `json:"seed"`
	CreatedAt  string                `json:"created_at,omitempty"`
	UpdatedAt  string                `json:"updated_at,omitempty"`
	Cells      map[string]CellRecord `json:"cells"`
}

// newManifest starts a fresh run manifest.
func newManifest(name string, configHash string, seed int64) *Manifest {
	now := time.Now().UTC().Format(time.RFC3339)
	return &Manifest{
		Version:    manifestVersion,
		Name:       name,
		ConfigHash: configHash,
		Seed:       seed,
		CreatedAt:  now,
		UpdatedAt:  now,
		Cells:      make(map[string]CellRecord),
	}
}

// LoadManifest reads a run directory's manifest. A missing file returns
// os.ErrNotExist.
func LoadManifest(dir string) (*Manifest, error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("grid: parsing run manifest %s: %w", dir, err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("grid: run manifest %s has version %d, want %d", dir, m.Version, manifestVersion)
	}
	if m.Cells == nil {
		m.Cells = make(map[string]CellRecord)
	}
	return &m, nil
}

// save atomically rewrites the manifest.
func (m *Manifest) save(dir string) error {
	m.UpdatedAt = time.Now().UTC().Format(time.RFC3339)
	return jsonio.WriteAtomic(filepath.Join(dir, manifestName), m)
}
