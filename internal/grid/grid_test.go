package grid

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"smartfeat/internal/experiments"
	"smartfeat/internal/fmgate"
)

// tinyConfig keeps the grid tests fast: one small dataset, two cheap models,
// scaled-down budgets.
func tinyConfig() experiments.Config {
	cfg := experiments.QuickConfig()
	cfg.Models = []string{"LR", "NB"}
	cfg.MaxTrainRows = 400
	cfg.SamplingBudget = 3
	cfg.CAAFEIterations = 2
	return cfg
}

// comparisonTables folds Tables 4/5 out of a run result.
func comparisonTables(t *testing.T, r *RunResult, names []string, cfg experiments.Config) (avg, median *experiments.ComparisonTable) {
	t.Helper()
	avg, median = r.Comparison(names, cfg)
	if avg == nil || median == nil {
		t.Fatal("fold returned nil tables")
	}
	return avg, median
}

// TestGridMatchesDirectComparison pins the tentpole equivalence: the grid
// engine's per-cell execution + artifact fold produces exactly the tables
// the in-process harness does.
func TestGridMatchesDirectComparison(t *testing.T) {
	names := []string{"Diabetes"}
	cfg := tinyConfig()

	direct, directMed, err := experiments.RunComparison(context.Background(), names, cfg)
	if err != nil {
		t.Fatal(err)
	}

	r := &Runner{Config: cfg, Dir: t.TempDir()}
	res, err := r.Run(context.Background(), ComparisonPlan(names, nil))
	if err != nil {
		t.Fatal(err)
	}
	avg, median := comparisonTables(t, res, names, cfg)

	if !reflect.DeepEqual(direct.Cells, avg.Cells) {
		t.Fatalf("avg cells differ:\ndirect: %v\ngrid:   %v", direct.Cells, avg.Cells)
	}
	if !reflect.DeepEqual(direct.Initial, avg.Initial) {
		t.Fatalf("initial differs: %v vs %v", direct.Initial, avg.Initial)
	}
	if !reflect.DeepEqual(direct.Partial, avg.Partial) {
		t.Fatal("partial markers differ")
	}
	if !reflect.DeepEqual(directMed.Cells, median.Cells) {
		t.Fatalf("median cells differ:\ndirect: %v\ngrid:   %v", directMed.Cells, median.Cells)
	}
	if direct.String() != avg.String() {
		t.Fatalf("rendered tables differ:\n%s\nvs\n%s", direct, avg)
	}
	// Efficiency rows fold from the same artifacts, in sequential order.
	rows := res.Efficiency(names)
	if len(rows) != len(experiments.Methods()) {
		t.Fatalf("efficiency rows = %d, want %d", len(rows), len(experiments.Methods()))
	}
	for i, m := range experiments.Methods() {
		if rows[i].Method != m || rows[i].Dataset != "Diabetes" {
			t.Fatalf("row %d = %s/%s", i, rows[i].Dataset, rows[i].Method)
		}
	}
}

// TestGridResumeAfterInterrupt pins the resume contract: a run cancelled
// mid-grid leaves completed artifacts behind; resuming it executes only the
// remainder and the folded tables are identical to an uninterrupted run.
func TestGridResumeAfterInterrupt(t *testing.T) {
	names := []string{"Diabetes"}
	cfg := tinyConfig()
	cfg.Workers = 1 // deterministic interruption point
	plan := ComparisonPlan(names, nil)
	dir := t.TempDir()

	// Reference: one uninterrupted run.
	ref, err := (&Runner{Config: cfg, Dir: t.TempDir()}).Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	refAvg, refMed := comparisonTables(t, ref, names, cfg)

	// Interrupted run: cancel as soon as the second cell completes.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	completed := 0
	r := &Runner{Config: cfg, Dir: dir, Logf: func(format string, args ...any) {
		if strings.Contains(format, "completed") {
			if completed++; completed == 2 {
				cancel()
			}
		}
	}}
	res, err := r.Run(ctx, plan)
	if err == nil {
		t.Fatal("interrupted run reported success")
	}
	var runErr *experiments.RunError
	if !errors.As(err, &runErr) {
		t.Fatalf("want *experiments.RunError, got %T: %v", err, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run should unwrap to context.Canceled: %v", err)
	}
	counts := res.Counts()
	if counts[StatusCompleted] < 2 || counts[StatusCompleted] == len(plan) {
		t.Fatalf("interruption produced %v", counts)
	}

	// Resume with a fresh context: completed cells load from artifacts.
	res2, err := (&Runner{Config: cfg, Dir: dir, Resume: true}).Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	counts2 := res2.Counts()
	if counts2[StatusResumed] != counts[StatusCompleted] {
		t.Fatalf("resumed %d cells, want %d", counts2[StatusResumed], counts[StatusCompleted])
	}
	if counts2[StatusResumed]+counts2[StatusCompleted] != len(plan) {
		t.Fatalf("resume did not finish the grid: %v", counts2)
	}
	avg, median := comparisonTables(t, res2, names, cfg)
	if avg.String() != refAvg.String() || median.String() != refMed.String() {
		t.Fatalf("resumed tables differ from uninterrupted run:\n%s\nvs\n%s", avg, refAvg)
	}
	if !reflect.DeepEqual(avg.Cells, refAvg.Cells) {
		t.Fatalf("resumed cells differ: %v vs %v", avg.Cells, refAvg.Cells)
	}

	// A fresh (non-resume) run into the same directory must refuse.
	if _, err := (&Runner{Config: cfg, Dir: dir}).Run(context.Background(), plan); err == nil {
		t.Fatal("fresh run over an existing manifest should refuse")
	}
	// Resuming under a drifted config must refuse too.
	drifted := cfg
	drifted.Seed++
	if _, err := (&Runner{Config: drifted, Dir: dir, Resume: true}).Run(context.Background(), plan); err == nil ||
		!strings.Contains(err.Error(), "config") {
		t.Fatalf("drifted-config resume: %v", err)
	}
}

// TestGridRecordReplay pins the sharded record/replay contract: a recorded
// grid replays bit-identical tables with zero upstream FM calls — for the
// full grid and for a single-cell subset of the recording.
func TestGridRecordReplay(t *testing.T) {
	names := []string{"Diabetes"}
	cfg := tinyConfig()
	plan := ComparisonPlan(names, nil)
	fmDir := t.TempDir()

	stores, err := fmgate.NewRecordStoreSet(fmDir, fmgate.StoreSetManifest{
		ConfigHash: cfg.Fingerprint(), Seed: cfg.Seed, Budget: cfg.SamplingBudget,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := (&Runner{Config: cfg, Dir: t.TempDir(), Stores: stores}).Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if err := stores.Close(); err != nil {
		t.Fatal(err)
	}
	recAvg, recMed := comparisonTables(t, rec, names, cfg)

	// Full-grid replay.
	replayStores, err := fmgate.OpenReplayStoreSet(fmDir, cfg.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := (&Runner{Config: cfg, Dir: t.TempDir(), Stores: replayStores}).Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	repAvg, repMed := comparisonTables(t, rep, names, cfg)
	if recAvg.String() != repAvg.String() || recMed.String() != repMed.String() {
		t.Fatalf("replayed tables differ:\n%s\nvs\n%s", repAvg, recAvg)
	}
	if !reflect.DeepEqual(recAvg.Cells, repAvg.Cells) {
		t.Fatalf("replayed cells differ: %v vs %v", recAvg.Cells, repAvg.Cells)
	}
	// Zero upstream FM traffic anywhere in the replayed grid.
	for _, c := range plan {
		art, ok := rep.Artifact(c)
		if !ok {
			t.Fatalf("cell %s missing from replay", c)
		}
		m := art.Method.FMMetrics
		if m.UpstreamCalls != 0 {
			t.Fatalf("cell %s made %d upstream calls during replay", c, m.UpstreamCalls)
		}
		if art.Method.FMUsage.SimCostUSD != 0 {
			t.Fatalf("cell %s cost $%f during replay", c, art.Method.FMUsage.SimCostUSD)
		}
		recArt, _ := rec.Artifact(c)
		if m.Requests > 0 && m.Replayed == 0 {
			t.Fatalf("cell %s requested %d completions but replayed none", c, m.Requests)
		}
		if !reflect.DeepEqual(recArt.Method.AUCs, art.Method.AUCs) {
			t.Fatalf("cell %s AUCs differ: %v vs %v", c, recArt.Method.AUCs, art.Method.AUCs)
		}
	}

	// Single-cell subset replay: just Diabetes × SMARTFEAT from the same
	// full-grid recording.
	cell := Cell{Dataset: "Diabetes", Method: experiments.MethodSmartfeat}
	soloStores, err := fmgate.OpenReplayStoreSet(fmDir, cfg.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	solo, err := (&Runner{Config: cfg, Stores: soloStores}).Run(context.Background(), []Cell{cell})
	if err != nil {
		t.Fatal(err)
	}
	soloArt, ok := solo.Artifact(cell)
	if !ok {
		t.Fatal("single-cell replay produced no artifact")
	}
	recArt, _ := rec.Artifact(cell)
	if !reflect.DeepEqual(soloArt.Method.AUCs, recArt.Method.AUCs) {
		t.Fatalf("single-cell replay AUCs differ: %v vs %v", soloArt.Method.AUCs, recArt.Method.AUCs)
	}
	if soloArt.Method.FMMetrics.UpstreamCalls != 0 {
		t.Fatal("single-cell replay reached upstream")
	}

	// Replay under a drifted config fails loudly at open.
	drifted := cfg
	drifted.SamplingBudget++
	if _, err := fmgate.OpenReplayStoreSet(fmDir, drifted.Fingerprint()); !errors.Is(err, fmgate.ErrStoreSetConfigMismatch) {
		t.Fatalf("want config-mismatch error, got %v", err)
	}
}

// TestGridFailFastSkippedVsFailed pins the satellite bugfix: a failing cell
// fails, unstarted cells report skipped (not silently absent), and the
// folded tables mark the two distinctly.
func TestGridFailFastSkippedVsFailed(t *testing.T) {
	cfg := tinyConfig()
	cfg.Workers = 1
	names := []string{"NoSuchDataset", "Diabetes"}
	plan := ComparisonPlan(names, []string{experiments.MethodInitial, experiments.MethodFeaturetools})

	res, err := (&Runner{Config: cfg}).Run(context.Background(), plan)
	if err == nil {
		t.Fatal("want failure")
	}
	var runErr *experiments.RunError
	if !errors.As(err, &runErr) {
		t.Fatalf("want *experiments.RunError, got %T", err)
	}
	if len(runErr.Failed) != 1 || runErr.Failed[0].Dataset != "NoSuchDataset" {
		t.Fatalf("failed = %v", runErr.Failed)
	}
	if len(runErr.Skipped) != len(plan)-1 {
		t.Fatalf("skipped = %v, want %d cells", runErr.Skipped, len(plan)-1)
	}
	msg := err.Error()
	if !strings.Contains(msg, "failed") || !strings.Contains(msg, "skipped") {
		t.Fatalf("error does not distinguish skipped from failed: %s", msg)
	}

	avg, _ := comparisonTables(t, res, names, cfg)
	if avg.Missing[experiments.MethodInitial]["NoSuchDataset"] != "failed" {
		t.Fatalf("missing marks = %v", avg.Missing)
	}
	if avg.Missing[experiments.MethodFeaturetools]["Diabetes"] != "skipped" {
		t.Fatalf("missing marks = %v", avg.Missing)
	}
	rendered := avg.String()
	if !strings.Contains(rendered, "!") || !strings.Contains(rendered, "?") {
		t.Fatalf("table does not render distinct miss markers:\n%s", rendered)
	}

	// KeepGoing runs every cell despite the failure.
	res2, err := (&Runner{Config: cfg, KeepGoing: true}).Run(context.Background(), plan)
	if err == nil {
		t.Fatal("keep-going still reports the failure")
	}
	c := res2.Counts()
	if c[StatusCompleted] != 2 || c[StatusFailed] != 2 || c[StatusSkipped] != 0 {
		t.Fatalf("keep-going counts = %v", c)
	}
}

// TestGridAuxCells pins the auxiliary cell kinds (figure1, descriptions)
// round-tripping through artifacts and folding identically to the direct
// entry points.
func TestGridAuxCells(t *testing.T) {
	cfg := tinyConfig()
	dir := t.TempDir()
	sizes := []int{50}
	plan := append(Figure1Plan(sizes), DescriptionsPlan("Tennis")...)

	res, err := (&Runner{Config: cfg, Dir: dir}).Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	points, ok := res.Figure1(sizes)
	if !ok || len(points) != 1 {
		t.Fatalf("figure1 fold: ok=%v n=%d", ok, len(points))
	}
	direct, err := experiments.Figure1InteractionCosts(context.Background(), sizes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The gateway cost column accumulates across concurrent completions, so
	// its float sum is order-dependent in the last ulp from run to run (a
	// property of the concurrent submitter, not of the grid engine) —
	// compare it with a tolerance and everything else exactly.
	for i := range points {
		if d := points[i].GatewayCostUSD - direct[i].GatewayCostUSD; d > 1e-9 || d < -1e-9 {
			t.Fatalf("gateway cost differs beyond ulp noise: %v vs %v", points[i].GatewayCostUSD, direct[i].GatewayCostUSD)
		}
		points[i].GatewayCostUSD = direct[i].GatewayCostUSD
	}
	if !reflect.DeepEqual(points, direct) {
		t.Fatalf("figure1 differs:\ngrid:   %+v\ndirect: %+v", points, direct)
	}

	abl, ok := res.Descriptions("Tennis")
	if !ok {
		t.Fatal("descriptions fold failed")
	}
	directAbl, err := experiments.RunDescriptionsAblation(context.Background(), "Tennis", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *abl != *directAbl {
		t.Fatalf("descriptions differ: %+v vs %+v", abl, directAbl)
	}

	// The artifacts survive a fresh read (what resume does).
	for _, c := range plan {
		art, err := ReadArtifact(dir, c, cfg.Fingerprint())
		if err != nil {
			t.Fatalf("artifact %s: %v", c, err)
		}
		if art.Kind == "" {
			t.Fatalf("artifact %s has no kind", c)
		}
	}
	// And a resumed run loads all of them without re-executing.
	res2, err := (&Runner{Config: cfg, Dir: dir, Resume: true}).Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if c := res2.Counts(); c[StatusResumed] != len(plan) {
		t.Fatalf("aux resume counts = %v", c)
	}
}

// TestCellKeys pins the artifact/shard naming scheme.
func TestCellKeys(t *testing.T) {
	cases := map[Cell]string{
		{Dataset: "Tennis", Method: "SMARTFEAT"}:      "Tennis__SMARTFEAT",
		{Dataset: "Tennis", Method: "Initial AUC"}:    "Tennis__Initial-AUC",
		{Dataset: "Tennis", Method: "table7:+Unary"}:  "Tennis__table7-+Unary",
		{Dataset: "Bank", Method: "figure1:1000"}:     "Bank__figure1-1000",
		{Dataset: "a/b", Method: "descriptions:with"}: "a-b__descriptions-with",
	}
	for c, want := range cases {
		if got := c.Key(); got != want {
			t.Fatalf("%v.Key() = %q, want %q", c, got, want)
		}
	}
}

// TestManifestRoundTrip pins the run-manifest serialization.
func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := newManifest("test", "hash-1", 42)
	m.Cells["Tennis__SMARTFEAT"] = CellRecord{Status: "completed"}
	m.Cells["Tennis__CAAFE"] = CellRecord{Status: "failed", Err: "boom"}
	if err := m.save(dir); err != nil {
		t.Fatal(err)
	}
	got, err := LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.ConfigHash != "hash-1" || got.Seed != 42 || len(got.Cells) != 2 {
		t.Fatalf("round trip = %+v", got)
	}
	if got.Cells["Tennis__CAAFE"].Err != "boom" {
		t.Fatalf("cell record lost: %+v", got.Cells)
	}
	if _, err := LoadManifest(filepath.Join(dir, "nope")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing manifest: %v", err)
	}
}
