package grid

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// mkRun synthesizes a run directory under root with the given config hash
// and UpdatedAt stamp.
func mkRun(t *testing.T, root, name, hash string, updated time.Time) string {
	t.Helper()
	dir := filepath.Join(root, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	m := newManifest(name, hash, 1)
	if err := m.save(dir); err != nil {
		t.Fatal(err)
	}
	// save stamps UpdatedAt with now; rewrite it to the synthetic time.
	m.UpdatedAt = updated.UTC().Format(time.RFC3339)
	raw := "{\n  \"version\": 1,\n  \"name\": \"" + name + "\",\n  \"config_hash\": \"" + hash + "\",\n  \"seed\": 1,\n  \"updated_at\": \"" + m.UpdatedAt + "\",\n  \"cells\": {}\n}\n"
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// mkLease plants a lease file in a run dir with the given age.
func mkLease(t *testing.T, runDir, name string, age time.Duration) string {
	t.Helper()
	dir := LeasesDir(runDir)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(`{"worker":"w","pid":1,"acquired_at":"2026-01-01T00:00:00Z"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	when := time.Now().Add(-age)
	if err := os.Chtimes(path, when, when); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCompactRetention pins the keep-last-N-per-config-hash policy.
func TestCompactRetention(t *testing.T) {
	root := t.TempDir()
	now := time.Now()
	oldA := mkRun(t, root, "a-old", "hash-A", now.Add(-3*time.Hour))
	midA := mkRun(t, root, "a-mid", "hash-A", now.Add(-2*time.Hour))
	newA := mkRun(t, root, "a-new", "hash-A", now.Add(-time.Hour))
	soleB := mkRun(t, root, "b-sole", "hash-B", now.Add(-10*time.Hour))
	// A non-run directory (an FM recording, say) must be left alone.
	fmDir := filepath.Join(root, "fm-shards")
	if err := os.MkdirAll(fmDir, 0o755); err != nil {
		t.Fatal(err)
	}

	rep, err := Compact(root, 2, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.RemovedRuns) != 1 || rep.RemovedRuns[0] != oldA {
		t.Fatalf("removed = %v, want [%s]", rep.RemovedRuns, oldA)
	}
	for _, kept := range []string{midA, newA, soleB, fmDir} {
		if _, err := os.Stat(kept); err != nil {
			t.Fatalf("%s should have been kept: %v", kept, err)
		}
	}
	if _, err := os.Stat(oldA); !os.IsNotExist(err) {
		t.Fatalf("%s should have been removed", oldA)
	}
	// keepN below 1 is a caller bug.
	if _, err := Compact(root, 0, 0); err == nil {
		t.Fatal("keepN=0 accepted")
	}
}

// TestCompactSweepsOrphanedLeases pins the lease sweep inside kept runs:
// completed-artifact leases, stale leases and reap tombstones go; live
// leases of unfinished cells stay.
func TestCompactSweepsOrphanedLeases(t *testing.T) {
	root := t.TempDir()
	run := mkRun(t, root, "run", "hash-A", time.Now())

	// An artifact for cell X: its lease is an orphan no matter how fresh.
	if err := os.WriteFile(filepath.Join(run, "Tennis__SMARTFEAT.json"), []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	doneLease := mkLease(t, run, "Tennis__SMARTFEAT.lease", 0)
	staleLease := mkLease(t, run, "Tennis__CAAFE.lease", time.Hour)
	liveLease := mkLease(t, run, "Tennis__AutoFeat.lease", 0)
	tomb := mkLease(t, run, "Tennis__CAAFE.lease.reap-w9", 0)

	rep, err := Compact(root, 1, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{doneLease: true, staleLease: true, tomb: true}
	if len(rep.RemovedLeases) != len(want) {
		t.Fatalf("removed leases = %v, want %v", rep.RemovedLeases, want)
	}
	for _, p := range rep.RemovedLeases {
		if !want[p] {
			t.Fatalf("unexpected sweep of %s", p)
		}
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("%s reported swept but still present", p)
		}
	}
	if _, err := os.Stat(liveLease); err != nil {
		t.Fatalf("live lease swept: %v", err)
	}
}
