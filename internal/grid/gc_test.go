package grid

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// mkRun synthesizes a run directory under root with the given config hash
// and UpdatedAt stamp.
func mkRun(t *testing.T, root, name, hash string, updated time.Time) string {
	t.Helper()
	dir := filepath.Join(root, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	m := newManifest(name, hash, 1)
	if err := m.save(dir); err != nil {
		t.Fatal(err)
	}
	// save stamps UpdatedAt with now; rewrite it to the synthetic time.
	m.UpdatedAt = updated.UTC().Format(time.RFC3339)
	raw := "{\n  \"version\": 1,\n  \"name\": \"" + name + "\",\n  \"config_hash\": \"" + hash + "\",\n  \"seed\": 1,\n  \"updated_at\": \"" + m.UpdatedAt + "\",\n  \"cells\": {}\n}\n"
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// mkLease plants a lease file in a run dir with the given age.
func mkLease(t *testing.T, runDir, name string, age time.Duration) string {
	t.Helper()
	dir := LeasesDir(runDir)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(`{"worker":"w","pid":1,"acquired_at":"2026-01-01T00:00:00Z"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	when := time.Now().Add(-age)
	if err := os.Chtimes(path, when, when); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCompactRetention pins the keep-last-N-per-config-hash policy.
func TestCompactRetention(t *testing.T) {
	root := t.TempDir()
	now := time.Now()
	oldA := mkRun(t, root, "a-old", "hash-A", now.Add(-3*time.Hour))
	midA := mkRun(t, root, "a-mid", "hash-A", now.Add(-2*time.Hour))
	newA := mkRun(t, root, "a-new", "hash-A", now.Add(-time.Hour))
	soleB := mkRun(t, root, "b-sole", "hash-B", now.Add(-10*time.Hour))
	// A non-run directory (an FM recording, say) must be left alone.
	fmDir := filepath.Join(root, "fm-shards")
	if err := os.MkdirAll(fmDir, 0o755); err != nil {
		t.Fatal(err)
	}

	rep, err := Compact(root, CompactOptions{KeepN: 2, TTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.RemovedRuns) != 1 || rep.RemovedRuns[0] != oldA {
		t.Fatalf("removed = %v, want [%s]", rep.RemovedRuns, oldA)
	}
	for _, kept := range []string{midA, newA, soleB, fmDir} {
		if _, err := os.Stat(kept); err != nil {
			t.Fatalf("%s should have been kept: %v", kept, err)
		}
	}
	if _, err := os.Stat(oldA); !os.IsNotExist(err) {
		t.Fatalf("%s should have been removed", oldA)
	}
	// keepN below 1 is a caller bug.
	if _, err := Compact(root, CompactOptions{}); err == nil {
		t.Fatal("keepN=0 accepted")
	}
}

// TestCompactSweepsOrphanedLeases pins the lease sweep inside kept runs:
// completed-artifact leases, stale leases and reap tombstones go; live
// leases of unfinished cells stay.
func TestCompactSweepsOrphanedLeases(t *testing.T) {
	root := t.TempDir()
	run := mkRun(t, root, "run", "hash-A", time.Now())

	// An artifact for cell X: its lease is an orphan no matter how fresh.
	if err := os.WriteFile(filepath.Join(run, "Tennis__SMARTFEAT.json"), []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	doneLease := mkLease(t, run, "Tennis__SMARTFEAT.lease", 0)
	staleLease := mkLease(t, run, "Tennis__CAAFE.lease", time.Hour)
	liveLease := mkLease(t, run, "Tennis__AutoFeat.lease", 0)
	tomb := mkLease(t, run, "Tennis__CAAFE.lease.reap-w9", 0)

	rep, err := Compact(root, CompactOptions{KeepN: 1, TTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{doneLease: true, staleLease: true, tomb: true}
	if len(rep.RemovedLeases) != len(want) {
		t.Fatalf("removed leases = %v, want %v", rep.RemovedLeases, want)
	}
	for _, p := range rep.RemovedLeases {
		if !want[p] {
			t.Fatalf("unexpected sweep of %s", p)
		}
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("%s reported swept but still present", p)
		}
	}
	if _, err := os.Stat(liveLease); err != nil {
		t.Fatalf("live lease swept: %v", err)
	}
}

// mkCacheDir synthesizes a completion-cache shard directory (an fmgate
// store-set manifest with an empty cell list) under root.
func mkCacheDir(t *testing.T, root, name, hash string) string {
	t.Helper()
	dir := filepath.Join(root, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	raw := `{"version":1,"config_hash":"` + hash + `","seed":1,"budget":0,"cells":[]}` + "\n"
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// mkShardFile plants a shard file of the given size and age in a cache dir.
func mkShardFile(t *testing.T, dir, name string, size int, age time.Duration) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, make([]byte, size), 0o644); err != nil {
		t.Fatal(err)
	}
	when := time.Now().Add(-age)
	if err := os.Chtimes(path, when, when); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCompactCacheSweep pins the completion-cache retention policy: the size
// cap evicts stale live shards oldest-first, never touches cell shards or
// live shards with a fresh heartbeat (a worker is appending — the live-lease
// safety guarantee), and orphaned cache-index snapshots are swept while
// consistent ones are kept.
func TestCompactCacheSweep(t *testing.T) {
	root := t.TempDir()
	const kb = 1 << 10
	cacheDir := mkCacheDir(t, root, "fm", "hash-C")
	cell := mkShardFile(t, cacheDir, "Tennis__SMARTFEAT.jsonl", 600*kb, 3*time.Hour)
	liveStale := mkShardFile(t, cacheDir, "live-a.jsonl", 300*kb, 2*time.Hour)
	liveStaler := mkShardFile(t, cacheDir, "live-b.jsonl", 300*kb, 3*time.Hour)
	liveFresh := mkShardFile(t, cacheDir, "live-c.jsonl", 300*kb, 0)
	// An index referencing a shard the size cap is about to evict: orphaned.
	orphanIdx := filepath.Join(cacheDir, "cache-index.json")
	if err := os.WriteFile(orphanIdx, []byte(`{"version":1,"config_hash":"hash-C","files":{"live-a.jsonl":1}}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A second cache dir whose index matches its contents: kept untouched.
	okDir := mkCacheDir(t, root, "fm-ok", "hash-D")
	okCell := mkShardFile(t, okDir, "Tennis__CAAFE.jsonl", 1*kb, time.Hour)
	okIdx := filepath.Join(okDir, "cache-index.json")
	if err := os.WriteFile(okIdx, []byte(`{"version":1,"config_hash":"hash-D","files":{"Tennis__CAAFE.jsonl":1024}}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A third whose index was written under a different config: swept even
	// though no size cap applies.
	driftDir := mkCacheDir(t, root, "fm-drift", "hash-E")
	driftIdx := filepath.Join(driftDir, "cache-index.json")
	if err := os.WriteFile(driftIdx, []byte(`{"version":1,"config_hash":"hash-OTHER","files":{}}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A plain run directory rides along to prove retention still works.
	run := mkRun(t, root, "run-1", "hash-A", time.Now())

	rep, err := Compact(root, CompactOptions{KeepN: 1, TTL: time.Minute, CacheMB: 1})
	if err != nil {
		t.Fatal(err)
	}
	removed := map[string]bool{}
	for _, p := range rep.RemovedCacheFiles {
		removed[p] = true
	}
	for _, p := range []string{liveStale, liveStaler, orphanIdx, driftIdx} {
		if !removed[p] {
			t.Fatalf("%s should have been swept; removed = %v", p, rep.RemovedCacheFiles)
		}
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("%s reported swept but still present", p)
		}
	}
	for _, p := range []string{cell, liveFresh, okCell, okIdx} {
		if removed[p] {
			t.Fatalf("%s must never be swept", p)
		}
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("%s should have been kept: %v", p, err)
		}
	}
	if rep.CacheBytesFreed < 600*kb {
		t.Fatalf("CacheBytesFreed = %d, want ≥ %d", rep.CacheBytesFreed, 600*kb)
	}
	if _, err := os.Stat(run); err != nil {
		t.Fatalf("run dir swept by cache pass: %v", err)
	}
	if len(rep.Kept) != 1 || rep.Kept[0] != run {
		t.Fatalf("kept = %v, want [%s]", rep.Kept, run)
	}
}
