package grid

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"smartfeat/internal/experiments"
	"smartfeat/internal/fm"
	"smartfeat/internal/fmgate"
	"smartfeat/internal/jsonio"
)

// artifactVersion is the on-disk artifact format version.
const artifactVersion = 1

// Artifact is the serialized outcome of one completed cell — everything the
// table folds need, and nothing they don't: the augmented frames are
// deliberately omitted (cells that need feature rankings, like Table 6,
// compute them in-cell and persist only the resulting row).
type Artifact struct {
	Version    int    `json:"version"`
	Cell       Cell   `json:"cell"`
	Kind       string `json:"kind"` // "method", "table6", "table7", "figure1"
	ConfigHash string `json:"config_hash"`

	// Exactly one of the payloads below is set, per Kind.
	Method  *MethodArtifact              `json:"method,omitempty"`
	Table6  *experiments.ImportanceRow   `json:"table6,omitempty"`
	Table7  *experiments.AblationRow     `json:"table7,omitempty"`
	Figure1 *experiments.InteractionCost `json:"figure1,omitempty"`
}

// MethodArtifact is the serializable slice of an experiments.MethodResult.
type MethodArtifact struct {
	AUCs         map[string]float64 `json:"aucs,omitempty"`
	FailedModels map[string]string  `json:"failed_models,omitempty"`
	Err          string             `json:"err,omitempty"`
	Generated    int                `json:"generated,omitempty"`
	Selected     int                `json:"selected,omitempty"`
	NewColumns   []string           `json:"new_columns,omitempty"`
	ElapsedNS    time.Duration      `json:"elapsed_ns,omitempty"`
	FMUsage      fm.Usage           `json:"fm_usage"`
	FMMetrics    fmgate.Metrics     `json:"fm_metrics"`
}

// newMethodArtifact flattens a method result for serialization.
func newMethodArtifact(r experiments.MethodResult) *MethodArtifact {
	a := &MethodArtifact{
		AUCs:         r.AUCs,
		FailedModels: r.FailedModels,
		Generated:    r.Generated,
		Selected:     r.Selected,
		NewColumns:   r.NewColumns,
		ElapsedNS:    r.Elapsed,
		FMUsage:      r.FMUsage,
		FMMetrics:    r.FMMetrics,
	}
	if r.Err != nil {
		a.Err = r.Err.Error()
	}
	return a
}

// Result rehydrates the method result (Frame-less; Err as an opaque error).
func (a *MethodArtifact) Result(method string) experiments.MethodResult {
	r := experiments.MethodResult{
		Method:       method,
		AUCs:         a.AUCs,
		FailedModels: a.FailedModels,
		Generated:    a.Generated,
		Selected:     a.Selected,
		NewColumns:   a.NewColumns,
		Elapsed:      a.ElapsedNS,
		FMUsage:      a.FMUsage,
		FMMetrics:    a.FMMetrics,
	}
	if a.Err != "" {
		r.Err = errors.New(a.Err)
	}
	return r
}

// artifactPath is the cell's artifact file inside a run directory.
func artifactPath(dir string, c Cell) string {
	return filepath.Join(dir, c.Key()+".json")
}

// WriteArtifact atomically persists a cell artifact (temp file + rename): a
// run killed mid-write never leaves a half-written artifact for resume to
// trip over.
func WriteArtifact(dir string, a *Artifact) error {
	a.Version = artifactVersion
	if err := jsonio.WriteAtomic(artifactPath(dir, a.Cell), a); err != nil {
		return fmt.Errorf("grid: artifact %s: %w", a.Cell, err)
	}
	return nil
}

// ReadArtifact loads a cell's artifact. A missing file returns os.ErrNotExist
// (the cell simply has not completed); a version or config-hash mismatch is a
// hard error — resuming a run under a drifted configuration would silently
// mix incomparable cells.
func ReadArtifact(dir string, c Cell, wantConfigHash string) (*Artifact, error) {
	raw, err := os.ReadFile(artifactPath(dir, c))
	if err != nil {
		return nil, err
	}
	var a Artifact
	if err := json.Unmarshal(raw, &a); err != nil {
		return nil, fmt.Errorf("grid: parsing artifact %s: %w", artifactPath(dir, c), err)
	}
	if a.Version != artifactVersion {
		return nil, fmt.Errorf("grid: artifact %s has version %d, want %d", artifactPath(dir, c), a.Version, artifactVersion)
	}
	if wantConfigHash != "" && a.ConfigHash != wantConfigHash {
		return nil, fmt.Errorf("grid: artifact %s was produced under config %s, this run is %s — start a fresh run directory",
			artifactPath(dir, c), a.ConfigHash, wantConfigHash)
	}
	return &a, nil
}
