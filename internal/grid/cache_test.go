package grid

import (
	"context"
	"sync"
	"testing"

	"smartfeat/internal/fmgate"
)

// TestGridDiskTierServesPeerRecording pins the tentpole acceptance contract
// of the tiered completion cache: worker A pays for a grid once (recording
// every completion into a shared shard directory); worker B then runs the
// same grid in a fresh run directory with only the disk tier pointed at A's
// shards — zero upstream calls, zero simulated spend, and tables
// byte-identical to A's. Error injection stays on: recorded upstream errors
// are part of the stream the disk tier must reproduce faithfully.
func TestGridDiskTierServesPeerRecording(t *testing.T) {
	names := []string{"Diabetes"}
	cfg := tinyConfig()
	cfg.Workers = 1
	plan := ComparisonPlan(names, nil)
	refAvg, refMed, fmDir, _ := recordTinyGrid(t, names, cfg, plan)

	dc, err := fmgate.OpenDiskCache(fmDir, fmgate.DiskCacheOptions{
		ConfigHash: cfg.Fingerprint(), Worker: "wB",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dc.Close()
	cfgB := cfg
	cfgB.FMDiskCache = dc
	rB := &Runner{Config: cfgB, Dir: t.TempDir(), Worker: "wB", LeaseTTL: workerTTL}
	resB, err := rB.Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if c := resB.Counts(); c[StatusCompleted] != len(plan) {
		t.Fatalf("worker B did not complete the grid: %v", c)
	}
	for _, c := range plan {
		a, ok := resB.Artifact(c)
		if !ok {
			t.Fatalf("no artifact for %s", c.Key())
		}
		if m := a.Method; m != nil && (m.FMUsage.Calls != 0 || m.FMUsage.SimCostUSD != 0) {
			t.Fatalf("%s reached upstream: calls=%d cost=%f — disk tier should have served everything",
				c.Key(), m.FMUsage.Calls, m.FMUsage.SimCostUSD)
		}
	}
	avg, median := comparisonTables(t, resB, names, cfg)
	if avg.String() != refAvg || median.String() != refMed {
		t.Fatalf("disk-tier tables differ from recording run:\n%s\nvs\n%s", avg, refAvg)
	}
	if keys, entries := dc.Stats(); keys == 0 || entries == 0 {
		t.Fatalf("disk cache served a grid with an empty index: keys=%d entries=%d", keys, entries)
	}
}

// TestGridConcurrentWorkersSharedCacheDir runs two lease-claiming workers
// draining one run directory while both record into — and read through —
// one shared shard directory, each with its own DiskCache. The partitioned
// cells must fold into tables byte-identical to the sequential reference.
// Error injection is disabled here: with partial disk coverage a cross-cell
// disk hit skips the upstream call mid-cell, and skipping an error-injection
// RNG draw would legitimately shift later outcomes (the full-coverage gate
// in tools/cache_check.sh keeps injection on; this test pins the live
// record-and-share path).
func TestGridConcurrentWorkersSharedCacheDir(t *testing.T) {
	names := []string{"Diabetes"}
	cfg := tinyConfig()
	cfg.Workers = 1
	cfg.FMErrorRate = 0
	plan := ComparisonPlan(names, nil)
	refAvg, refMed, _, _ := recordTinyGrid(t, names, cfg, plan)

	fmDir := t.TempDir()
	dir := t.TempDir()
	const workers = 2
	results := make([]*RunResult, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			worker := string(rune('a' + i))
			stores, err := fmgate.NewRecordStoreSet(fmDir, fmgate.StoreSetManifest{
				ConfigHash: cfg.Fingerprint(), Seed: cfg.Seed, Budget: cfg.SamplingBudget,
			})
			if err != nil {
				errs[i] = err
				return
			}
			defer stores.Close()
			dc, err := fmgate.OpenDiskCache(fmDir, fmgate.DiskCacheOptions{
				ConfigHash: cfg.Fingerprint(), Worker: worker,
			})
			if err != nil {
				errs[i] = err
				return
			}
			defer dc.Close()
			cfgW := cfg
			cfgW.FMDiskCache = dc
			r := &Runner{Config: cfgW, Dir: dir, Stores: stores, Worker: worker, LeaseTTL: workerTTL}
			results[i], errs[i] = r.Run(context.Background(), plan)
		}(i)
	}
	wg.Wait()

	executed := 0
	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		c := results[i].Counts()
		executed += c[StatusCompleted]
		if c[StatusCompleted]+c[StatusResumed] != len(plan) {
			t.Fatalf("worker %d did not resolve the full grid: %v", i, c)
		}
		avg, median := comparisonTables(t, results[i], names, cfg)
		if avg.String() != refAvg || median.String() != refMed {
			t.Fatalf("worker %d tables differ from sequential run:\n%s\nvs\n%s", i, avg, refAvg)
		}
	}
	if executed != len(plan) {
		t.Fatalf("cells executed across workers = %d, want %d (each exactly once)", executed, len(plan))
	}
}
