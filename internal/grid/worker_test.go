package grid

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"smartfeat/internal/experiments"
	"smartfeat/internal/fmgate"
	"smartfeat/internal/lease"
)

// workerTTL keeps multi-worker tests responsive: poll ≈ TTL/6, heartbeat =
// TTL/3, both well under cell execution time, while the TTL itself stays far
// enough above a heartbeat that a loaded CI box (race detector, -cpu 1)
// cannot starve a ticker long enough to fake a stale lease.
const workerTTL = 5 * time.Second

// recordTinyGrid records the tiny comparison grid once and returns the
// sequential reference tables plus the recording directory.
func recordTinyGrid(t *testing.T, names []string, cfg experiments.Config, plan []Cell) (avg, median string, fmDir string, ref *RunResult) {
	t.Helper()
	fmDir = t.TempDir()
	stores, err := fmgate.NewRecordStoreSet(fmDir, fmgate.StoreSetManifest{
		ConfigHash: cfg.Fingerprint(), Seed: cfg.Seed, Budget: cfg.SamplingBudget,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref, err = (&Runner{Config: cfg, Dir: t.TempDir(), Stores: stores}).Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if err := stores.Close(); err != nil {
		t.Fatal(err)
	}
	a, m := comparisonTables(t, ref, names, cfg)
	return a.String(), m.String(), fmDir, ref
}

// runWorker drains the shared run directory as one worker process would:
// its own Runner, its own replay StoreSet over the shared recording.
func runWorker(ctx context.Context, t *testing.T, worker, dir, fmDir string, cfg experiments.Config, plan []Cell) (*RunResult, error) {
	t.Helper()
	stores, err := fmgate.OpenReplayStoreSet(fmDir, cfg.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	defer stores.Close()
	r := &Runner{Config: cfg, Dir: dir, Stores: stores, Worker: worker, LeaseTTL: workerTTL}
	return r.Run(ctx, plan)
}

// TestGridMultiWorkersMatchSequential pins the tentpole acceptance contract:
// three concurrent workers draining one replayed run directory partition the
// cells between them, every worker folds the full grid, and the tables are
// byte-identical to the single-process sequential run.
func TestGridMultiWorkersMatchSequential(t *testing.T) {
	names := []string{"Diabetes"}
	cfg := tinyConfig()
	cfg.Workers = 1
	plan := ComparisonPlan(names, nil)
	refAvg, refMed, fmDir, _ := recordTinyGrid(t, names, cfg, plan)

	dir := t.TempDir()
	const workers = 3
	results := make([]*RunResult, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = runWorker(context.Background(), t, string(rune('a'+i)), dir, fmDir, cfg, plan)
		}(i)
	}
	wg.Wait()

	executed := 0
	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		c := results[i].Counts()
		executed += c[StatusCompleted]
		if c[StatusCompleted]+c[StatusResumed] != len(plan) {
			t.Fatalf("worker %d did not resolve the full grid: %v", i, c)
		}
		avg, median := comparisonTables(t, results[i], names, cfg)
		if avg.String() != refAvg || median.String() != refMed {
			t.Fatalf("worker %d tables differ from sequential run:\n%s\nvs\n%s", i, avg, refAvg)
		}
	}
	// The workers partitioned the plan: every cell executed exactly once.
	if executed != len(plan) {
		t.Fatalf("cells executed across workers = %d, want %d (each exactly once)", executed, len(plan))
	}
	// No leases survive a clean drain.
	leases, err := filepath.Glob(filepath.Join(LeasesDir(dir), "*.lease"))
	if err != nil {
		t.Fatal(err)
	}
	if len(leases) != 0 {
		t.Fatalf("leases left behind: %v", leases)
	}
}

// TestGridWorkerReclaimsCrashedPeer pins crashed-worker takeover: a worker is
// interrupted mid-grid and a stale lease is left behind (as a kill -9 would),
// and a second worker reclaims the cell, finishes the grid, and folds tables
// byte-identical to the sequential run of the same recording.
func TestGridWorkerReclaimsCrashedPeer(t *testing.T) {
	names := []string{"Diabetes"}
	cfg := tinyConfig()
	cfg.Workers = 1
	plan := ComparisonPlan(names, nil)
	refAvg, refMed, fmDir, _ := recordTinyGrid(t, names, cfg, plan)

	// First worker: cancelled after two completed cells.
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	completed := 0
	stores, err := fmgate.OpenReplayStoreSet(fmDir, cfg.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	w1 := &Runner{Config: cfg, Dir: dir, Stores: stores, Worker: "w1", LeaseTTL: workerTTL,
		Logf: func(format string, args ...any) {
			if strings.Contains(format, "completed") {
				mu.Lock()
				if completed++; completed == 2 {
					cancel()
				}
				mu.Unlock()
			}
		}}
	if _, err := w1.Run(ctx, plan); err == nil {
		t.Fatal("interrupted worker reported success")
	}
	stores.Close()

	// Crash simulation: a lease on one unfinished cell whose owner is gone
	// (no heartbeats — mtime pinned in the past, beyond any TTL).
	var unfinished Cell
	for _, c := range plan {
		if _, err := ReadArtifact(dir, c, cfg.Fingerprint()); errors.Is(err, os.ErrNotExist) {
			unfinished = c
			break
		}
	}
	if unfinished == (Cell{}) {
		t.Fatal("interrupted run left no unfinished cell")
	}
	leasePath := filepath.Join(LeasesDir(dir), unfinished.Key()+".lease")
	if err := os.MkdirAll(LeasesDir(dir), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(leasePath, []byte(`{"worker":"crashed","pid":99999,"acquired_at":"2026-01-01T00:00:00Z"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(leasePath, old, old); err != nil {
		t.Fatal(err)
	}

	// Second worker: reclaims the stale lease, finishes everything.
	res, err := runWorker(context.Background(), t, "w2", dir, fmDir, cfg, plan)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Counts()
	if c[StatusCompleted]+c[StatusResumed] != len(plan) {
		t.Fatalf("reclaiming worker did not finish the grid: %v", c)
	}
	if c[StatusCompleted] == 0 {
		t.Fatal("reclaiming worker executed nothing (stale lease not reclaimed?)")
	}
	avg, median := comparisonTables(t, res, names, cfg)
	if avg.String() != refAvg || median.String() != refMed {
		t.Fatalf("post-reclaim tables differ from sequential run:\n%s\nvs\n%s", avg, refAvg)
	}
}

// TestGridWorkerRetriesPriorSessionFailure pins the failure-propagation
// scope: a failure record left by an *earlier* session is retried by a
// worker (exactly as single-process -resume retries it), not treated as a
// live peer's verdict — only failures recorded during the current run
// short-circuit cells across workers.
func TestGridWorkerRetriesPriorSessionFailure(t *testing.T) {
	names := []string{"Diabetes"}
	cfg := tinyConfig()
	cfg.Workers = 1
	plan := ComparisonPlan(names, nil)
	refAvg, refMed, fmDir, _ := recordTinyGrid(t, names, cfg, plan)

	// A previous session's manifest: one cell marked failed (transiently).
	dir := t.TempDir()
	m := newManifest("prior", cfg.Fingerprint(), cfg.Seed)
	failedKey := Cell{Dataset: "Diabetes", Method: experiments.MethodFeaturetools}.Key()
	m.Cells[failedKey] = CellRecord{Status: string(StatusFailed), Err: "transient", Worker: "dead", FinishedAt: "2026-01-01T00:00:00Z"}
	if err := m.save(dir); err != nil {
		t.Fatal(err)
	}

	res, err := runWorker(context.Background(), t, "w1", dir, fmDir, cfg, plan)
	if err != nil {
		t.Fatalf("worker did not retry the prior failure: %v", err)
	}
	if c := res.Counts(); c[StatusCompleted] != len(plan) {
		t.Fatalf("counts = %v, want %d completed", c, len(plan))
	}
	avg, median := comparisonTables(t, res, names, cfg)
	if avg.String() != refAvg || median.String() != refMed {
		t.Fatalf("retried tables differ from sequential run:\n%s\nvs\n%s", avg, refAvg)
	}
	// The retry overwrote the stale failure record.
	m2, err := LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec := m2.Cells[failedKey]; rec.Status != string(StatusCompleted) || rec.Worker != "w1" {
		t.Fatalf("manifest record after retry = %+v", rec)
	}
}

// TestGridForeignLiveLeaseMarkers pins the interrupted-elsewhere reporting: a
// cell held under a live foreign lease when this worker stops is surfaced as
// in-progress-elsewhere ('?' in the tables, RunError.Elsewhere in the error)
// rather than lumped into skipped.
func TestGridForeignLiveLeaseMarkers(t *testing.T) {
	names := []string{"Diabetes"}
	cfg := tinyConfig()
	cfg.Workers = 1
	plan := ComparisonPlan(names, []string{experiments.MethodInitial, experiments.MethodFeaturetools})
	_, _, fmDir, _ := recordTinyGrid(t, names, cfg, plan)

	// A live peer holds the Featuretools cell (heartbeating in background).
	dir := t.TempDir()
	held := Cell{Dataset: "Diabetes", Method: experiments.MethodFeaturetools}
	peer, err := lease.New(LeasesDir(dir), lease.Options{Worker: "peer", TTL: workerTTL})
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	claim, ok, err := peer.Claim(held.Key())
	if err != nil || !ok {
		t.Fatalf("peer claim: ok=%v err=%v", ok, err)
	}
	defer claim.Release()

	// The worker drains what it can, then is cancelled while waiting on the
	// peer (KeepGoing, as the satellite scenario specifies).
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stores, err := fmgate.OpenReplayStoreSet(fmDir, cfg.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	defer stores.Close()
	w := &Runner{Config: cfg, Dir: dir, Stores: stores, Worker: "w1", LeaseTTL: workerTTL, KeepGoing: true,
		Logf: func(format string, args ...any) {
			if strings.Contains(format, "waiting on") {
				cancel()
			}
		}}
	res, err := w.Run(ctx, plan)
	if err == nil {
		t.Fatal("worker with a peer-held cell reported success")
	}
	var runErr *experiments.RunError
	if !errors.As(err, &runErr) {
		t.Fatalf("want *experiments.RunError, got %T: %v", err, err)
	}
	if len(runErr.Elsewhere) != 1 || !strings.Contains(runErr.Elsewhere[0], held.String()) ||
		!strings.Contains(runErr.Elsewhere[0], "peer") {
		t.Fatalf("Elsewhere = %v, want [%s (held by peer)]", runErr.Elsewhere, held)
	}
	if !strings.Contains(err.Error(), "in progress on other workers") {
		t.Fatalf("error does not call out foreign cells: %v", err)
	}
	o := res.outcome(held)
	if o == nil || o.Status != StatusLeased || o.Holder != "peer" {
		t.Fatalf("held cell outcome = %+v", o)
	}

	// The fold marks the peer-held cell '?' (in progress), not '!' (failed).
	avg, _ := comparisonTables(t, res, names, cfg)
	if avg.Missing[experiments.MethodFeaturetools]["Diabetes"] != "elsewhere" {
		t.Fatalf("missing marks = %v", avg.Missing)
	}
	if !strings.Contains(avg.String(), "?") {
		t.Fatalf("table does not render the in-progress marker:\n%s", avg)
	}
}
