package grid

import (
	"errors"
	"fmt"
	"io"
	"os"

	"smartfeat/internal/experiments"
)

// AblationDataset is the dataset the paper's Table 6/7 and description
// ablations run on.
const AblationDataset = "Tennis"

// Selection names the subset of the paper's tables and figures a run (or a
// served job) regenerates, in the vocabulary of cmd/experiments' flags. It
// is the shared seam between the one-shot CLI and the smartfeatd daemon:
// both build their cell plans with Plan and fold completed runs with Render,
// so a job served over HTTP renders byte-identical tables to the CLI run of
// the same selection.
type Selection struct {
	// Table selects one table (3, 4, 5, 6, 7); 0 selects none.
	Table int
	// Figure selects a figure. Only Figure 1 is cell-addressed; the Figure 2
	// walkthrough executes outside the grid engine and is the caller's
	// responsibility (Render places its pre-rendered text in table order).
	Figure int
	// Efficiency selects the per-method timing/traffic table.
	Efficiency bool
	// Descriptions selects the §4.2 feature-description ablation.
	Descriptions bool
	// All selects everything.
	All bool
	// Figure1Sizes overrides the Figure 1 size series (nil = the default
	// series for the All setting, per DefaultFigure1Sizes).
	Figure1Sizes []int
}

// DefaultFigure1Sizes is the Figure 1 size series cmd/experiments uses: the
// full-size 41189-row point is dropped under -all, where the whole grid is
// already the expensive path.
func DefaultFigure1Sizes(all bool) []int {
	if all {
		return []int{100, 1000, 10000}
	}
	return []int{100, 1000, 10000, 41189}
}

// Any reports whether the selection selects anything at all.
func (s Selection) Any() bool {
	return s.Table != 0 || s.Figure != 0 || s.Efficiency || s.Descriptions || s.All
}

// Comparison reports whether the selection needs the (dataset × method)
// comparison cells (Tables 4/5 and the efficiency fold both read them).
func (s Selection) Comparison() bool {
	return s.Table == 4 || s.Table == 5 || s.Efficiency || s.All
}

// sizes resolves the Figure 1 size series.
func (s Selection) sizes() []int {
	if s.Figure1Sizes != nil {
		return s.Figure1Sizes
	}
	return DefaultFigure1Sizes(s.All)
}

// Plan expands the selection into its grid cells, in table order. datasets
// scopes the comparison cells; methods restricts the comparison methods
// (nil = all, with experiments.MethodInitial always included by the
// ComparisonPlan contract).
func (s Selection) Plan(datasets, methods []string) []Cell {
	var plan []Cell
	if s.Comparison() {
		cellMethods := methods
		if cellMethods == nil && !(s.Table == 4 || s.Table == 5 || s.All) {
			// Efficiency-only selection: the efficiency fold never reads the
			// Initial cells, so don't pay for them.
			cellMethods = experiments.Methods()
		}
		plan = append(plan, ComparisonPlan(datasets, cellMethods)...)
	}
	if s.Table == 6 || s.All {
		plan = append(plan, Table6Plan(AblationDataset)...)
	}
	if s.Table == 7 || s.All {
		plan = append(plan, Table7Plan(AblationDataset)...)
	}
	if s.Figure == 1 || s.All {
		plan = append(plan, Figure1Plan(s.sizes())...)
	}
	if s.Descriptions || s.All {
		plan = append(plan, DescriptionsPlan(AblationDataset)...)
	}
	return plan
}

// Render folds the run result into the selection's tables and writes them to
// w, in the exact order and format cmd/experiments prints to stdout — the
// daemon's result endpoint and the CLI must stay byte-identical for the same
// completed cells. Partially completed runs render the cells they have (the
// comparison tables mark failed/skipped cells; all-or-nothing folds like
// Table 6 are omitted until complete). figure2, when non-empty, is the
// pre-rendered Figure 2 walkthrough, placed in table order.
func (s Selection) Render(w io.Writer, r *RunResult, datasets []string, cfg experiments.Config, figure2 string) {
	if s.Table == 3 || s.All {
		fmt.Fprintln(w, experiments.Table3String(cfg))
	}
	if s.Table == 4 || s.Table == 5 || s.All {
		avg, median := r.Comparison(datasets, cfg)
		fmt.Fprintln(w, avg)
		fmt.Fprintln(w, median)
	}
	if s.Table == 6 || s.All {
		if rows, ok := r.Table6(AblationDataset); ok {
			fmt.Fprintln(w, experiments.Table6String(rows))
		}
	}
	if s.Table == 7 || s.All {
		if rows, ok := r.Table7(AblationDataset); ok {
			fmt.Fprintln(w, experiments.Table7String(rows, cfg.Models))
		}
	}
	if s.Figure == 1 || s.All {
		if points, ok := r.Figure1(s.sizes()); ok {
			fmt.Fprintln(w, experiments.Figure1String(points))
		}
	}
	if figure2 != "" {
		fmt.Fprintln(w, figure2)
	}
	if s.Efficiency || s.All {
		if rows := r.Efficiency(datasets); len(rows) > 0 {
			fmt.Fprintln(w, experiments.EfficiencyString(rows))
		}
	}
	if s.Descriptions || s.All {
		if abl, ok := r.Descriptions(AblationDataset); ok {
			fmt.Fprintln(w, abl)
		}
	}
}

// Progress is a point-in-time fold of a run directory's manifest against a
// plan: how many of the planned cells have resolved, and to what. It is the
// smartfeatd status endpoint's payload — cheap enough to compute on every
// poll (one manifest read), and accurate across processes because every
// worker rewrites the shared manifest after each cell it resolves.
type Progress struct {
	// Planned is the plan size; Completed/Failed count planned cells whose
	// manifest record reached that status. Cells still executing (or not yet
	// claimed) are the remainder.
	Planned   int `json:"planned"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	// ByWorker counts completed cells per resolving worker id — the
	// visible footprint of N daemon replicas draining one run directory.
	ByWorker map[string]int `json:"by_worker,omitempty"`
	// Cells maps each planned cell key to its manifest status ("completed",
	// "failed"); cells without a record yet are absent.
	Cells map[string]string `json:"cells,omitempty"`
}

// PlanProgress folds dir's manifest against plan. A run directory whose
// manifest does not exist yet (the runner has not created it) reports zero
// progress rather than an error; other read failures propagate.
func PlanProgress(dir string, plan []Cell) (Progress, error) {
	p := Progress{Planned: len(plan)}
	m, err := LoadManifest(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return p, nil
		}
		return p, err
	}
	p.Cells = make(map[string]string, len(plan))
	p.ByWorker = make(map[string]int)
	for _, c := range plan {
		rec, ok := m.Cells[c.Key()]
		if !ok {
			continue
		}
		p.Cells[c.Key()] = rec.Status
		switch rec.Status {
		case string(StatusCompleted):
			p.Completed++
			p.ByWorker[rec.Worker]++
		case string(StatusFailed):
			p.Failed++
		}
	}
	return p, nil
}
