#!/bin/sh
# sim_soak.sh — multi-seed soak of the smartfeatd daemon under synthetic
# load (make sim-soak SEEDS=N; wired into CI as the sim-check job).
#
# Phase 1 records the quick Diabetes comparison grid sequentially with the
# experiments CLI and keeps its stdout as the golden tables. Then, once per
# seed, phase 2 starts a fresh replay-backed daemon — with a small admission
# queue, two executors, and the fmgate fault model injecting transient
# errors, rate limits and latency jitter into the FM transport — and drives
# it with cmd/loadsim: two tenants, two closed-loop clients each, a three-
# spec workload mix, strict mode. Strict mode means the run itself asserts
#
#   * every re-served spec's result is byte-identical to its first serve;
#   * the daemon's serve_* counter deltas reconcile exactly against the
#     client's own admission/rejection/completion ledger;
#   * no op exhausts its Retry-After backoff budget.
#
# The harness then asserts across runs:
#
#   * every seed's result tables are byte-identical to seed 1's (the seed
#     perturbs timing only — never results);
#   * the full-selection table is byte-identical to the CLI golden;
#   * every daemon drains clean on SIGTERM (exit 0).
#
# Seed 1's run is appended (as go-bench lines via tools/benchjson) to the
# BENCH_load.json trajectory.
set -eu

GO="${GO:-go}"
SEEDS="${SEEDS:-3}"
TMP="$(mktemp -d)"
DAEMON_PID=""
cleanup() {
    [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

EXP="$TMP/experiments"
DAEMON="$TMP/smartfeatd"
LOADSIM="$TMP/loadsim"
"$GO" build -o "$EXP" ./cmd/experiments
"$GO" build -o "$DAEMON" ./cmd/smartfeatd
"$GO" build -o "$LOADSIM" ./cmd/loadsim

# Comparison selection only (table 4, quick, Diabetes): deterministic per
# cell, so served results can be diffed byte-for-byte.
echo "sim-soak: recording sequential golden run" >&2
"$EXP" -table 4 -quick -datasets Diabetes \
    -run-dir "$TMP/seq" -fm-record "$TMP/fm" >"$TMP/golden.txt" 2>"$TMP/seq.log"

# The workload mix: op k submits spec k%3. Spec 0 is the full selection
# (comparable against the CLI golden); 1 and 2 are method-restricted
# variants (restricting methods does not change the config fingerprint, so
# the recording covers them too).
SPEC0='{"table":4,"quick":true,"datasets":["Diabetes"]}'
SPEC1='{"table":4,"quick":true,"datasets":["Diabetes"],"methods":["SMARTFEAT"]}'
SPEC2='{"table":4,"quick":true,"datasets":["Diabetes"],"methods":["CAAFE"]}'

seed=1
while [ "$seed" -le "$SEEDS" ]; do
    echo "sim-soak: seed $seed: starting replay-backed daemon (chaos pool enabled)" >&2
    : >"$TMP/daemon-$seed.log"
    # queue-depth 1 against 4 closed-loop clients (2 running + 1 queued < 4)
    # guarantees the 429 + Retry-After path is exercised every seed.
    "$DAEMON" -addr 127.0.0.1:0 -run-root "$TMP/root-$seed" -fm-replay "$TMP/fm" \
        -queue-depth 1 -executors 2 -worker "soak-$seed" \
        -drain-timeout 120s -retry-after 1s \
        -fm-backends 3 -fm-retries 4 \
        -fm-faults 'rate=0.05,ratelimit=0.05,retryafter=10ms,jitter=1ms' \
        2>"$TMP/daemon-$seed.log" &
    DAEMON_PID=$!

    tries=0
    until grep -q "serving on http://" "$TMP/daemon-$seed.log" 2>/dev/null; do
        if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
            echo "sim-soak: daemon died on startup; log:" >&2
            cat "$TMP/daemon-$seed.log" >&2; exit 1
        fi
        tries=$((tries + 1))
        if [ "$tries" -gt 100 ]; then
            echo "sim-soak: daemon never announced its address" >&2
            cat "$TMP/daemon-$seed.log" >&2; exit 1
        fi
        sleep 0.1
    done
    ADDR="$(sed -n 's|^smartfeatd: serving on http://\([^ ]*\).*|\1|p' "$TMP/daemon-$seed.log" | head -n 1)"
    [ -n "$ADDR" ] || { echo "sim-soak: no address in daemon log" >&2; exit 1; }

    BENCH_FLAG=""
    [ "$seed" = "1" ] && BENCH_FLAG="-bench $TMP/bench.txt"
    echo "sim-soak: seed $seed: driving load (6 ops, 2 tenants x 2 clients)" >&2
    "$LOADSIM" -addr "http://$ADDR" \
        -spec "$SPEC0" -spec "$SPEC1" -spec "$SPEC2" \
        -tenants 2 -clients 2 -ops 6 -seed "$seed" -retries 20 \
        -strict -q -out "$TMP/out-$seed" $BENCH_FLAG >"$TMP/loadsim-$seed.txt" 2>&1 || {
        echo "sim-soak: seed $seed: loadsim failed:" >&2
        cat "$TMP/loadsim-$seed.txt" >&2
        cat "$TMP/daemon-$seed.log" >&2; exit 1; }
    cat "$TMP/loadsim-$seed.txt" >&2

    # SIGTERM drain: everything already completed (closed loop), exit 0.
    kill -TERM "$DAEMON_PID"
    set +e
    wait "$DAEMON_PID"
    STATUS=$?
    set -e
    DAEMON_PID=""
    [ "$STATUS" = "0" ] || {
        echo "sim-soak: seed $seed: daemon exited $STATUS after SIGTERM, want 0; log:" >&2
        cat "$TMP/daemon-$seed.log" >&2; exit 1; }

    # The full-selection table must match the CLI golden byte-for-byte.
    diff "$TMP/golden.txt" "$TMP/out-$seed/tables/table-00.txt" >&2 || {
        echo "sim-soak: seed $seed: full-selection table differs from the CLI golden" >&2; exit 1; }

    # Every seed's tables must match seed 1's byte-for-byte: the seed moves
    # arrival timing, backoff jitter and think time — never results.
    if [ "$seed" != "1" ]; then
        diff -r "$TMP/out-1/tables" "$TMP/out-$seed/tables" >&2 || {
            echo "sim-soak: seed $seed: tables differ from seed 1 (results leaked timing)" >&2; exit 1; }
    fi
    echo "sim-soak: seed $seed: tables byte-identical, drain clean" >&2
    seed=$((seed + 1))
done

# Fold seed 1's run into the committed load trajectory.
if [ -n "${BENCH_OUT:-}" ]; then
    "$GO" run ./tools/benchjson -append "$BENCH_OUT" <"$TMP/bench.txt" >"$BENCH_OUT.tmp" \
        && mv "$BENCH_OUT.tmp" "$BENCH_OUT"
    echo "sim-soak: appended seed-1 run to $BENCH_OUT" >&2
fi

echo "sim-soak: OK ($SEEDS seeds, tables byte-identical across all)" >&2
