#!/bin/sh
# grid_workers.sh — end-to-end check of the distributed grid engine across
# real processes (make grid-workers; wired into CI).
#
# Phase 1 records the quick Diabetes comparison grid sequentially and keeps
# its stdout as the golden tables. Phase 2 points three -worker processes at
# one fresh run directory replaying that recording and requires every
# worker's folded tables to be byte-identical to the golden output. Phase 3
# repeats that with a crash: the first worker is killed mid-run (kill -9, so
# its lease is never released) and the surviving workers must reclaim its
# cells after the lease TTL and still converge on identical tables.
set -eu

GO="${GO:-go}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT INT TERM

BIN="$TMP/experiments"
"$GO" build -o "$BIN" ./cmd/experiments

# The comparison selection only: table 4/5 folds are deterministic per-cell;
# the efficiency table would embed wall-clock timings and can never diff
# clean.
ARGS="-table 4 -quick -datasets Diabetes"

echo "grid-workers: recording sequential golden run" >&2
"$BIN" $ARGS -run-dir "$TMP/seq" -fm-record "$TMP/fm" >"$TMP/golden.txt" 2>"$TMP/seq.log"

echo "grid-workers: 3 workers draining one replayed run dir" >&2
pids=""
for i in 1 2 3; do
    "$BIN" $ARGS -worker "w$i" -run-dir "$TMP/dist" -fm-replay "$TMP/fm" -lease-ttl 5s \
        >"$TMP/w$i.txt" 2>"$TMP/w$i.log" &
    pids="$pids $!"
done
for p in $pids; do
    wait "$p" || { echo "grid-workers: a worker failed; logs:" >&2; cat "$TMP"/w*.log >&2; exit 1; }
done
for i in 1 2 3; do
    diff "$TMP/golden.txt" "$TMP/w$i.txt" >&2 || {
        echo "grid-workers: worker w$i tables differ from sequential run" >&2; exit 1; }
done
if [ -n "$(ls "$TMP/dist/leases" 2>/dev/null)" ]; then
    echo "grid-workers: leases left behind after a clean drain:" >&2
    ls "$TMP/dist/leases" >&2
    exit 1
fi
echo "grid-workers: 3-worker tables byte-identical to sequential" >&2

echo "grid-workers: crash-reclaim — killing one worker mid-run" >&2
"$BIN" $ARGS -worker w1 -run-dir "$TMP/crash" -fm-replay "$TMP/fm" -lease-ttl 3s \
    >"$TMP/c1.txt" 2>"$TMP/c1.log" &
victim=$!
sleep 1
kill -9 "$victim" 2>/dev/null || true
wait "$victim" 2>/dev/null || true
pids=""
for i in 2 3; do
    "$BIN" $ARGS -worker "w$i" -run-dir "$TMP/crash" -fm-replay "$TMP/fm" -lease-ttl 3s \
        >"$TMP/c$i.txt" 2>"$TMP/c$i.log" &
    pids="$pids $!"
done
for p in $pids; do
    wait "$p" || { echo "grid-workers: a surviving worker failed; logs:" >&2; cat "$TMP"/c[23].log >&2; exit 1; }
done
for i in 2 3; do
    diff "$TMP/golden.txt" "$TMP/c$i.txt" >&2 || {
        echo "grid-workers: post-crash worker w$i tables differ from sequential run" >&2; exit 1; }
done
echo "grid-workers: crash-reclaim tables byte-identical to sequential" >&2

echo "grid-workers: OK" >&2
