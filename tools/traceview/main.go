// Command traceview converts an obs trace (trace.jsonl, produced by the
// -trace flag of cmd/experiments and cmd/smartfeat) into Chrome trace-event
// JSON, loadable in Perfetto (https://ui.perfetto.dev) or chrome://tracing.
//
// Usage:
//
//	traceview runs/t4/trace.jsonl > trace.json
//	traceview < trace.jsonl > trace.json
//	traceview -merge daemon.jsonl worker1.jsonl worker2.jsonl > trace.json
//
// Each span becomes one complete ("X") event. Spans are grouped into tracks
// by their root ancestor (the top-level span of each grid cell or FM call
// chain), so a grid run renders as one lane per concurrently executing
// cell. Attributes and bubbled counts land in the event's args.
//
// -merge accepts several trace files — say, a daemon and the worker
// replicas cooperating on its run root, or a loadsim client beside the
// daemon it drives — and renders them as one chronological Chrome trace:
// each file becomes its own pid lane (pid = argument position, 1-based, so
// span ids never collide across files), and every file's timestamps are
// shifted onto the epoch of the earliest-started trace using the headers'
// wall-clock Started stamps. Started has second precision, so cross-file
// alignment is exact to the second and within a file to the microsecond.
//
// The converter is also the trace validator: any malformed line — bad JSON,
// a missing header, a non-positive id, a duplicate id, a negative timestamp
// or duration — fails the conversion with a line-numbered error and exit
// status 1, in -merge mode naming the offending file. CI runs it over every
// traced grid for exactly this reason.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"
)

// header is the first line of trace.jsonl.
type header struct {
	Trace   string `json:"trace"`
	Program string `json:"program"`
	Started string `json:"started"`
}

// span is one recorded span line.
type span struct {
	ID     int64             `json:"id"`
	Parent int64             `json:"parent"`
	Name   string            `json:"name"`
	TsUS   int64             `json:"ts_us"`
	DurUS  int64             `json:"dur_us"`
	Attrs  map[string]string `json:"attrs"`
	Counts map[string]int64  `json:"counts"`
}

// event is one Chrome trace-event object.
type event struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// output is the Chrome trace "JSON object format".
type output struct {
	TraceEvents []event        `json:"traceEvents"`
	OtherData   map[string]any `json:"otherData,omitempty"`
}

func main() {
	var out *output
	var err error
	switch {
	case len(os.Args) > 1 && (os.Args[1] == "-h" || os.Args[1] == "--help"):
		fmt.Fprintln(os.Stderr, "usage: traceview [trace.jsonl] > trace.json")
		fmt.Fprintln(os.Stderr, "       traceview -merge trace1.jsonl trace2.jsonl ... > trace.json")
		os.Exit(2)
	case len(os.Args) > 1 && os.Args[1] == "-merge":
		if len(os.Args) < 3 {
			fatal("-merge needs at least one trace file")
		}
		out, err = mergeFiles(os.Args[2:])
	case len(os.Args) > 1:
		var f *os.File
		f, err = os.Open(os.Args[1])
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		out, err = convert(f, os.Args[1])
	default:
		out, err = convert(os.Stdin, "<stdin>")
	}
	if err != nil {
		fatal("%v", err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", " ")
	if err := enc.Encode(out); err != nil {
		fatal("%v", err)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "traceview: "+format+"\n", args...)
	os.Exit(1)
}

// parse reads and validates one trace stream. Every error is prefixed with
// name and, for per-line failures, the 1-based line number.
func parse(in io.Reader, name string) (header, []span, error) {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)

	var hdr header
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return hdr, nil, fmt.Errorf("%s: %v", name, err)
		}
		return hdr, nil, fmt.Errorf("%s: empty trace (missing header line)", name)
	}
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return hdr, nil, fmt.Errorf("%s:1: malformed header: %v", name, err)
	}
	if hdr.Trace != "v1" {
		return hdr, nil, fmt.Errorf("%s:1: unsupported trace version %q (want \"v1\")", name, hdr.Trace)
	}

	var spans []span
	seen := make(map[int64]bool)
	for lineNo := 2; sc.Scan(); lineNo++ {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var s span
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			return hdr, nil, fmt.Errorf("%s:%d: malformed span: %v", name, lineNo, err)
		}
		switch {
		case s.ID <= 0:
			return hdr, nil, fmt.Errorf("%s:%d: span id %d (ids are positive)", name, lineNo, s.ID)
		case s.Parent < 0:
			return hdr, nil, fmt.Errorf("%s:%d: span %d has negative parent %d", name, lineNo, s.ID, s.Parent)
		case s.Name == "":
			return hdr, nil, fmt.Errorf("%s:%d: span %d has no name", name, lineNo, s.ID)
		case s.TsUS < 0 || s.DurUS < 0:
			return hdr, nil, fmt.Errorf("%s:%d: span %d has negative time (ts=%d dur=%d)", name, lineNo, s.ID, s.TsUS, s.DurUS)
		}
		if seen[s.ID] {
			return hdr, nil, fmt.Errorf("%s:%d: duplicate span id %d", name, lineNo, s.ID)
		}
		seen[s.ID] = true
		spans = append(spans, s)
	}
	if err := sc.Err(); err != nil {
		return hdr, nil, fmt.Errorf("%s: %v", name, err)
	}
	return hdr, spans, nil
}

// buildEvents turns one file's spans into Chrome events on the given pid
// lane, with every timestamp shifted by offsetUS.
func buildEvents(spans []span, pid int, offsetUS int64) []event {
	// Track = root ancestor. Spans are flushed on End, so children precede
	// their parents in the file; with the full map loaded, walk each chain
	// to the top. An interrupted run can leave a chain dangling at a parent
	// that never ended — the walk stops at the last recorded ancestor.
	parent := make(map[int64]int64, len(spans))
	for _, s := range spans {
		parent[s.ID] = s.Parent
	}
	root := func(id int64) int64 {
		for {
			p, ok := parent[id]
			if !ok || p == 0 {
				return id
			}
			id = p
		}
	}

	events := make([]event, 0, len(spans))
	for _, s := range spans {
		args := make(map[string]any, len(s.Attrs)+len(s.Counts)+1)
		for k, v := range s.Attrs {
			args[k] = v
		}
		for k, v := range s.Counts {
			args["count:"+k] = v
		}
		if s.Parent != 0 {
			args["parent_span"] = s.Parent
		}
		events = append(events, event{
			Name: s.Name, Ph: "X", Ts: s.TsUS + offsetUS, Dur: s.DurUS,
			Pid: pid, Tid: root(s.ID), Args: args,
		})
	}
	return events
}

func sortEvents(events []event) {
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Pid != events[j].Pid {
			return events[i].Pid < events[j].Pid
		}
		if events[i].Tid != events[j].Tid {
			return events[i].Tid < events[j].Tid
		}
		return events[i].Ts < events[j].Ts
	})
}

// convert reads and validates a trace stream, producing the Chrome events.
func convert(in io.Reader, name string) (*output, error) {
	hdr, spans, err := parse(in, name)
	if err != nil {
		return nil, err
	}
	events := buildEvents(spans, 1, 0)
	sortEvents(events)
	return &output{
		TraceEvents: events,
		OtherData: map[string]any{
			"program": hdr.Program,
			"started": hdr.Started,
			"spans":   len(spans),
		},
	}, nil
}

// mergeFiles parses every named trace and renders them as one chronological
// Chrome trace. Each file gets its own pid lane (its 1-based argument
// position) so span ids stay namespaced per file, and each file's
// timestamps are shifted onto the epoch of the earliest-started trace via
// the headers' wall-clock Started stamps.
func mergeFiles(names []string) (*output, error) {
	type parsed struct {
		hdr     header
		spans   []span
		started time.Time
	}
	files := make([]parsed, 0, len(names))
	var epoch time.Time
	for _, name := range names {
		f, err := os.Open(name)
		if err != nil {
			return nil, err
		}
		hdr, spans, err := parse(f, name)
		f.Close()
		if err != nil {
			return nil, err
		}
		started, err := time.Parse(time.RFC3339, hdr.Started)
		if err != nil {
			return nil, fmt.Errorf("%s:1: header started %q is not RFC3339 (merge needs it to align epochs): %v", name, hdr.Started, err)
		}
		if epoch.IsZero() || started.Before(epoch) {
			epoch = started
		}
		files = append(files, parsed{hdr: hdr, spans: spans, started: started})
	}

	var events []event
	programs := make([]string, 0, len(files))
	total := 0
	for i, p := range files {
		events = append(events, buildEvents(p.spans, i+1, p.started.Sub(epoch).Microseconds())...)
		programs = append(programs, fmt.Sprintf("%d: %s (%s)", i+1, p.hdr.Program, names[i]))
		total += len(p.spans)
	}
	sortEvents(events)
	return &output{
		TraceEvents: events,
		OtherData: map[string]any{
			"programs": programs,
			"started":  epoch.UTC().Format(time.RFC3339),
			"spans":    total,
			"files":    len(files),
		},
	}, nil
}
