// Command traceview converts an obs trace (trace.jsonl, produced by the
// -trace flag of cmd/experiments and cmd/smartfeat) into Chrome trace-event
// JSON, loadable in Perfetto (https://ui.perfetto.dev) or chrome://tracing.
//
// Usage:
//
//	traceview runs/t4/trace.jsonl > trace.json
//	traceview < trace.jsonl > trace.json
//
// Each span becomes one complete ("X") event. Spans are grouped into tracks
// by their root ancestor (the top-level span of each grid cell or FM call
// chain), so a grid run renders as one lane per concurrently executing
// cell. Attributes and bubbled counts land in the event's args.
//
// The converter is also the trace validator: any malformed line — bad JSON,
// a missing header, a non-positive id, a duplicate id, a negative timestamp
// or duration — fails the conversion with a line-numbered error and exit
// status 1. CI runs it over every traced grid for exactly this reason.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// header is the first line of trace.jsonl.
type header struct {
	Trace   string `json:"trace"`
	Program string `json:"program"`
	Started string `json:"started"`
}

// span is one recorded span line.
type span struct {
	ID     int64             `json:"id"`
	Parent int64             `json:"parent"`
	Name   string            `json:"name"`
	TsUS   int64             `json:"ts_us"`
	DurUS  int64             `json:"dur_us"`
	Attrs  map[string]string `json:"attrs"`
	Counts map[string]int64  `json:"counts"`
}

// event is one Chrome trace-event object.
type event struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// output is the Chrome trace "JSON object format".
type output struct {
	TraceEvents []event        `json:"traceEvents"`
	OtherData   map[string]any `json:"otherData,omitempty"`
}

func main() {
	in := io.Reader(os.Stdin)
	name := "<stdin>"
	if len(os.Args) > 1 {
		if os.Args[1] == "-h" || os.Args[1] == "--help" {
			fmt.Fprintln(os.Stderr, "usage: traceview [trace.jsonl] > trace.json")
			os.Exit(2)
		}
		f, err := os.Open(os.Args[1])
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		in, name = f, os.Args[1]
	}
	out, err := convert(in, name)
	if err != nil {
		fatal("%v", err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", " ")
	if err := enc.Encode(out); err != nil {
		fatal("%v", err)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "traceview: "+format+"\n", args...)
	os.Exit(1)
}

// convert reads and validates a trace stream, producing the Chrome events.
func convert(in io.Reader, name string) (*output, error) {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)

	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("%s: %v", name, err)
		}
		return nil, fmt.Errorf("%s: empty trace (missing header line)", name)
	}
	var hdr header
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("%s:1: malformed header: %v", name, err)
	}
	if hdr.Trace != "v1" {
		return nil, fmt.Errorf("%s:1: unsupported trace version %q (want \"v1\")", name, hdr.Trace)
	}

	var spans []span
	parent := make(map[int64]int64)
	for lineNo := 2; sc.Scan(); lineNo++ {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var s span
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			return nil, fmt.Errorf("%s:%d: malformed span: %v", name, lineNo, err)
		}
		switch {
		case s.ID <= 0:
			return nil, fmt.Errorf("%s:%d: span id %d (ids are positive)", name, lineNo, s.ID)
		case s.Parent < 0:
			return nil, fmt.Errorf("%s:%d: span %d has negative parent %d", name, lineNo, s.ID, s.Parent)
		case s.Name == "":
			return nil, fmt.Errorf("%s:%d: span %d has no name", name, lineNo, s.ID)
		case s.TsUS < 0 || s.DurUS < 0:
			return nil, fmt.Errorf("%s:%d: span %d has negative time (ts=%d dur=%d)", name, lineNo, s.ID, s.TsUS, s.DurUS)
		}
		if _, dup := parent[s.ID]; dup {
			return nil, fmt.Errorf("%s:%d: duplicate span id %d", name, lineNo, s.ID)
		}
		parent[s.ID] = s.Parent
		spans = append(spans, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %v", name, err)
	}

	// Track = root ancestor. Spans are flushed on End, so children precede
	// their parents in the file; with the full map loaded, walk each chain
	// to the top. An interrupted run can leave a chain dangling at a parent
	// that never ended — the walk stops at the last recorded ancestor.
	root := func(id int64) int64 {
		for {
			p, ok := parent[id]
			if !ok || p == 0 {
				return id
			}
			id = p
		}
	}

	events := make([]event, 0, len(spans))
	for _, s := range spans {
		args := make(map[string]any, len(s.Attrs)+len(s.Counts)+1)
		for k, v := range s.Attrs {
			args[k] = v
		}
		for k, v := range s.Counts {
			args["count:"+k] = v
		}
		if s.Parent != 0 {
			args["parent_span"] = s.Parent
		}
		events = append(events, event{
			Name: s.Name, Ph: "X", Ts: s.TsUS, Dur: s.DurUS,
			Pid: 1, Tid: root(s.ID), Args: args,
		})
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Tid != events[j].Tid {
			return events[i].Tid < events[j].Tid
		}
		return events[i].Ts < events[j].Ts
	})
	return &output{
		TraceEvents: events,
		OtherData: map[string]any{
			"program": hdr.Program,
			"started": hdr.Started,
			"spans":   len(spans),
		},
	}, nil
}
