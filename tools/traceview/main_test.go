package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTrace(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const traceA = `{"trace":"v1","program":"smartfeatd","started":"2026-08-07T10:00:00Z"}
{"id":2,"parent":1,"name":"child","ts_us":100,"dur_us":50}
{"id":1,"parent":0,"name":"rootA","ts_us":0,"dur_us":500}
`

const traceB = `{"trace":"v1","program":"loadsim","started":"2026-08-07T10:00:02Z"}
{"id":1,"parent":0,"name":"rootB","ts_us":10,"dur_us":20}
`

func TestConvertSingleFile(t *testing.T) {
	out, err := convert(strings.NewReader(traceA), "a.jsonl")
	if err != nil {
		t.Fatalf("convert: %v", err)
	}
	if len(out.TraceEvents) != 2 {
		t.Fatalf("events = %d, want 2", len(out.TraceEvents))
	}
	for _, e := range out.TraceEvents {
		if e.Pid != 1 || e.Tid != 1 {
			t.Errorf("event %q pid/tid = %d/%d, want 1/1 (both spans share root 1)", e.Name, e.Pid, e.Tid)
		}
	}
}

func TestMergeAlignsEpochsAndNamespacesPids(t *testing.T) {
	dir := t.TempDir()
	a := writeTrace(t, dir, "a.jsonl", traceA)
	b := writeTrace(t, dir, "b.jsonl", traceB)
	out, err := mergeFiles([]string{a, b})
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if len(out.TraceEvents) != 3 {
		t.Fatalf("events = %d, want 3", len(out.TraceEvents))
	}
	byName := make(map[string]event)
	for _, e := range out.TraceEvents {
		byName[e.Name] = e
	}
	// File A started first: its events keep their own timestamps on pid 1.
	if e := byName["rootA"]; e.Pid != 1 || e.Ts != 0 {
		t.Errorf("rootA pid/ts = %d/%d, want 1/0", e.Pid, e.Ts)
	}
	// File B started 2s later: pid 2, timestamps shifted +2s onto A's epoch.
	if e := byName["rootB"]; e.Pid != 2 || e.Ts != 2_000_000+10 {
		t.Errorf("rootB pid/ts = %d/%d, want 2/%d", e.Pid, e.Ts, 2_000_000+10)
	}
	if got := out.OtherData["started"]; got != "2026-08-07T10:00:00Z" {
		t.Errorf("merged epoch = %v, want the earliest header's", got)
	}
	if got := out.OtherData["files"]; got != 2 {
		t.Errorf("files = %v, want 2", got)
	}
}

// TestMergeDuplicateIDsAcrossFilesAreFine pins the namespacing contract:
// both inputs use span id 1, which is only a conflict within one file.
func TestMergeDuplicateIDsAcrossFilesAreFine(t *testing.T) {
	dir := t.TempDir()
	a := writeTrace(t, dir, "a.jsonl", traceA)
	b := writeTrace(t, dir, "b.jsonl", traceB)
	if _, err := mergeFiles([]string{a, b}); err != nil {
		t.Fatalf("merge with per-file id 1 in both inputs: %v", err)
	}
}

func TestMergeErrorsKeepFileAndLine(t *testing.T) {
	dir := t.TempDir()
	a := writeTrace(t, dir, "a.jsonl", traceA)
	bad := writeTrace(t, dir, "bad.jsonl",
		"{\"trace\":\"v1\",\"program\":\"x\",\"started\":\"2026-08-07T10:00:00Z\"}\n"+
			"{\"id\":1,\"parent\":0,\"name\":\"ok\",\"ts_us\":0,\"dur_us\":1}\n"+
			"{\"id\":1,\"parent\":0,\"name\":\"dup\",\"ts_us\":5,\"dur_us\":1}\n")
	_, err := mergeFiles([]string{a, bad})
	if err == nil {
		t.Fatal("merge accepted a duplicate span id within one file")
	}
	if !strings.Contains(err.Error(), "bad.jsonl:3") {
		t.Errorf("error %q does not name the offending file and line bad.jsonl:3", err)
	}
}

func TestMergeRejectsUnparseableStarted(t *testing.T) {
	dir := t.TempDir()
	bad := writeTrace(t, dir, "nostamp.jsonl",
		"{\"trace\":\"v1\",\"program\":\"x\",\"started\":\"yesterday\"}\n"+
			"{\"id\":1,\"parent\":0,\"name\":\"ok\",\"ts_us\":0,\"dur_us\":1}\n")
	_, err := mergeFiles([]string{bad})
	if err == nil || !strings.Contains(err.Error(), "nostamp.jsonl:1") {
		t.Fatalf("err = %v, want a line-1 error about the unparseable started stamp", err)
	}
}
