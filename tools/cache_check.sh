#!/bin/sh
# cache_check.sh — end-to-end gate for the tiered completion cache
# (make cache-check; wired into CI).
#
# Phase 1 records the quick Diabetes comparison grid sequentially, keeping
# its stdout as the golden tables and its recording directory as the shard
# source. Phase 2 re-runs the same configuration in a fresh run directory
# with a cold in-process LRU and only -fm-cache-dir pointed at the shards —
# the disk tier must serve the entire prompt stream — and requires:
#
#   * the folded tables to be byte-identical to the golden output
#     (a disk-tier hit carries replay-grade semantics, so a fully covered
#     cached run may never perturb results);
#   * zero upstream calls and $0 simulated spend in the run profile
#     (every completion was already paid for by the recording run);
#   * disk-tier hits ≥ 90% of the recorded completion count (the tier is
#     actually serving, not silently missing to a fallback).
set -eu

GO="${GO:-go}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT INT TERM

EXP="$TMP/experiments"
"$GO" build -o "$EXP" ./cmd/experiments

# Comparison selection only: table 4/5 folds are deterministic per cell (the
# efficiency table embeds wall-clock timings and can never diff clean).
ARGS="-table 4 -quick -datasets Diabetes"

echo "cache-check: recording sequential golden run" >&2
"$EXP" $ARGS -run-dir "$TMP/seq" -fm-record "$TMP/fm" >"$TMP/golden.txt" 2>"$TMP/seq.log"

RECORDED="$(cat "$TMP/fm"/*.jsonl | wc -l | tr -d ' ')"
[ "$RECORDED" -gt 0 ] || {
    echo "cache-check: recording run produced no completions" >&2; exit 1; }

echo "cache-check: re-running cold against the disk tier ($RECORDED recorded completions)" >&2
"$EXP" $ARGS -run-dir "$TMP/cache" -fm-cache-dir "$TMP/fm" -worker w1 \
    >"$TMP/cache.txt" 2>"$TMP/cache.log" || {
    echo "cache-check: cached run failed; log:" >&2; cat "$TMP/cache.log" >&2; exit 1; }

diff "$TMP/golden.txt" "$TMP/cache.txt" >&2 || {
    echo "cache-check: cached tables differ from golden run" >&2; exit 1; }
echo "cache-check: cached tables byte-identical to golden" >&2

PROFILE="$TMP/cache/profile.json"
[ -f "$PROFILE" ] || { echo "cache-check: no run profile at $PROFILE" >&2; exit 1; }
jsonint() {
    sed -n 's/.*"'"$1"'": \([0-9][0-9]*\).*/\1/p' "$PROFILE" | head -n 1
}

UPSTREAM="$(jsonint fm_upstream_calls)"
DISK="$(jsonint fm_disk_hits)"
COST="$(sed -n 's/.*"sim_cost_usd": \([0-9.eE+-]*\).*/\1/p' "$PROFILE" | head -n 1)"

[ "${UPSTREAM:-1}" = "0" ] || {
    echo "cache-check: cached run reached upstream $UPSTREAM times, want 0" >&2
    cat "$PROFILE" >&2; exit 1; }
[ "${COST:-1}" = "0" ] || {
    echo "cache-check: cached run spent \$$COST simulated, want \$0" >&2
    cat "$PROFILE" >&2; exit 1; }
FLOOR=$((RECORDED * 9 / 10))
[ "${DISK:-0}" -ge "$FLOOR" ] || {
    echo "cache-check: disk-tier hits $DISK below floor $FLOOR (90% of $RECORDED recorded)" >&2
    cat "$PROFILE" >&2; exit 1; }

echo "cache-check: ok — $DISK disk-tier hits, 0 upstream calls, \$0 spend" >&2
