#!/bin/sh
# obs_check.sh — end-to-end check of the observability layer
# (make obs-check; wired into CI).
#
# Phase 1 records the quick Diabetes comparison grid sequentially and keeps
# its stdout as the golden tables. Phase 2 replays that recording with the
# full telemetry stack engaged — span tracing (-trace), a live /metrics +
# /debug/pprof server (-metrics-addr), worker mode (for the lease series)
# and a faulty 3-backend pool (for the breaker series) — and requires:
#
#   * the folded tables to be byte-identical to the golden output
#     (observability may never perturb results);
#   * /metrics to expose the fmgate, pool, breaker, grid and lease series
#     (Prometheus text and JSON renderings both);
#   * trace.jsonl to validate and convert cleanly through tools/traceview,
#     with exactly one "cell" span per grid cell and at least one FM-call
#     span per traced run.
set -eu

GO="${GO:-go}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT INT TERM

EXP="$TMP/experiments"
TV="$TMP/traceview"
"$GO" build -o "$EXP" ./cmd/experiments
"$GO" build -o "$TV" ./tools/traceview

# Comparison selection only: table 4/5 folds are deterministic per cell (the
# efficiency table embeds wall-clock timings and can never diff clean).
ARGS="-table 4 -quick -datasets Diabetes"
FAULTS="rate=0.1,ratelimit=0.03,jitter=4ms,retryafter=10ms,outage=b2:5-25"

echo "obs-check: recording sequential golden run" >&2
"$EXP" $ARGS -run-dir "$TMP/seq" -fm-record "$TMP/fm" >"$TMP/golden.txt" 2>"$TMP/seq.log"

echo "obs-check: replaying with -trace, -metrics-addr, -worker and a faulty pool" >&2
"$EXP" $ARGS -run-dir "$TMP/obs" -fm-replay "$TMP/fm" -worker w1 \
    -fm-backends 3 -fm-hedge 2ms -fm-deadline 2s -fm-breaker 3:50ms \
    -fm-retries 8 -fm-faults "$FAULTS" \
    -trace -metrics-addr 127.0.0.1:0 -metrics-linger 30s \
    >"$TMP/obs.txt" 2>"$TMP/obs.log" &
OBS_PID=$!

# The server lingers after the run so this script can scrape it; wait for
# the run-end profile table, then pull the address off the stderr notice.
tries=0
until grep -q "== run profile ==" "$TMP/obs.log" 2>/dev/null; do
    if ! kill -0 "$OBS_PID" 2>/dev/null; then
        echo "obs-check: observed run died; log:" >&2; cat "$TMP/obs.log" >&2; exit 1
    fi
    tries=$((tries + 1))
    if [ "$tries" -gt 600 ]; then
        echo "obs-check: timed out waiting for the observed run; log:" >&2
        cat "$TMP/obs.log" >&2; exit 1
    fi
    sleep 0.2
done
ADDR="$(sed -n 's|^obs: serving /metrics and /debug/pprof on http://||p' "$TMP/obs.log" | head -n 1)"
[ -n "$ADDR" ] || { echo "obs-check: no metrics address in log" >&2; cat "$TMP/obs.log" >&2; exit 1; }

curl -fsS "http://$ADDR/metrics" >"$TMP/metrics.txt" || {
    echo "obs-check: scraping /metrics failed" >&2; exit 1; }
curl -fsS "http://$ADDR/metrics?format=json" >"$TMP/metrics.json" || {
    echo "obs-check: scraping /metrics?format=json failed" >&2; exit 1; }
curl -fsS "http://$ADDR/debug/pprof/cmdline" >/dev/null || {
    echo "obs-check: /debug/pprof not served" >&2; exit 1; }
# SIGKILL: the process is only sleeping out its -metrics-linger window at
# this point (tables printed, trace flushed and closed), and the graceful
# SIGTERM path would wait out the full linger.
kill -9 "$OBS_PID" 2>/dev/null || true
wait "$OBS_PID" 2>/dev/null || true

diff "$TMP/golden.txt" "$TMP/obs.txt" >&2 || {
    echo "obs-check: observed tables differ from golden run" >&2; exit 1; }
echo "obs-check: observed tables byte-identical to golden" >&2

# Every subsystem must publish into the shared registry: the gateways
# (fm_*), the tiered completion cache (fmcache_*), the backend pool and its
# breakers (fmpool_*), the grid runner (grid_*) and the worker-mode lease
# claimer (lease_*).
for series in fm_requests_total fm_replayed_total fm_request_seconds \
    fmcache_hits_total fmcache_misses_total fmcache_evictions_total fmcache_bytes \
    fmpool_calls_total fmpool_backend_picks_total fmpool_breaker_opens_total \
    grid_cells_total grid_cell_seconds lease_claims_total; do
    grep -q "^$series" "$TMP/metrics.txt" || {
        echo "obs-check: /metrics missing series $series; scrape was:" >&2
        cat "$TMP/metrics.txt" >&2; exit 1; }
    grep -q "\"$series\"" "$TMP/metrics.json" || {
        echo "obs-check: JSON snapshot missing series $series" >&2; exit 1; }
done
echo "obs-check: fmgate/pool/breaker/grid/lease series all present" >&2

TRACE="$TMP/obs/trace.jsonl"
[ -s "$TRACE" ] || { echo "obs-check: $TRACE missing or empty" >&2; exit 1; }
"$TV" "$TRACE" >"$TMP/trace.json" || {
    echo "obs-check: traceview rejected the trace" >&2; exit 1; }
grep -q '"traceEvents"' "$TMP/trace.json" || {
    echo "obs-check: traceview output has no traceEvents" >&2; exit 1; }

# One cell span per planned cell (the summary line knows the plan size) and
# at least one FM-call span — the trace must actually cover the run.
PLANNED="$(sed -n 's/^grid: \([0-9][0-9]*\) cells:.*/\1/p' "$TMP/obs.log" | head -n 1)"
CELLS="$(grep -c '"name":"cell"' "$TRACE" || true)"
FMCALLS="$(grep -c '"name":"fm.call"' "$TRACE" || true)"
[ -n "$PLANNED" ] && [ "$CELLS" = "$PLANNED" ] || {
    echo "obs-check: want $PLANNED cell spans, trace has $CELLS" >&2; exit 1; }
[ "$FMCALLS" -gt 0 ] || { echo "obs-check: no fm.call spans in trace" >&2; exit 1; }
echo "obs-check: trace valid ($CELLS cell spans, $FMCALLS fm.call spans)" >&2

echo "obs-check: OK" >&2
