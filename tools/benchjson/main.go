// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document on stdout, so CI can archive benchmark
// runs as artifacts and the perf trajectory (BENCH_kernel.json,
// BENCH_grid.json) stays diffable across commits instead of living in
// prose. Every raw benchmark line is kept (repeated -count runs included)
// and a per-benchmark median summary is computed for quick comparisons.
//
// Usage: go test -bench . -benchmem ./... | go run ./tools/benchjson
//
// With -append FILE the new report is appended to the trajectory already in
// FILE and the combined JSON array is written to stdout, so the committed
// BENCH_*.json files accumulate one entry per sweep instead of forgetting
// their history (a single data point is a measurement; two or more are a
// trajectory). FILE may hold either a legacy single-report object — wrapped
// into a one-entry array first — or an array from a previous -append.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one raw result line. Name is kept exactly as printed
// (including any -GOMAXPROCS suffix): a trailing -N is ambiguous between
// the procs suffix and a sub-benchmark name that happens to end in a
// number, so the verbatim name is the only safe identity; Procs is a
// best-effort parse of the suffix for convenience.
type Benchmark struct {
	Pkg        string  `json:"pkg,omitempty"`
	Name       string  `json:"name"`
	Procs      int     `json:"procs"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present with -benchmem.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64   `json:"allocs_per_op,omitempty"`
}

// Summary aggregates repeated runs of one benchmark.
type Summary struct {
	Runs          int     `json:"runs"`
	MedianNsPerOp float64 `json:"median_ns_per_op"`
	MinNsPerOp    float64 `json:"min_ns_per_op"`
	MaxNsPerOp    float64 `json:"max_ns_per_op"`
}

// Report is the whole document.
type Report struct {
	GOOS       string             `json:"goos,omitempty"`
	GOARCH     string             `json:"goarch,omitempty"`
	CPU        string             `json:"cpu,omitempty"`
	Benchmarks []Benchmark        `json:"benchmarks"`
	Summary    map[string]Summary `json:"summary"`
}

// parseProcs best-effort parses the trailing -GOMAXPROCS suffix the
// testing package appends to benchmark names (absent when GOMAXPROCS=1;
// indistinguishable from a sub-benchmark name ending in -N, which is why
// callers must not use it to rewrite the name).
func parseProcs(name string) int {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return 1
	}
	if n, err := strconv.Atoi(name[i+1:]); err == nil && n > 0 {
		return n
	}
	return 1
}

// parseLine parses one benchmark result line, reporting ok=false for
// non-benchmark output (build noise, pass/fail lines, headers).
func parseLine(line, pkg string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Pkg: pkg, Name: fields[0], Procs: parseProcs(fields[0]), Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = val
			seen = true
		case "B/op":
			v := val
			b.BytesPerOp = &v
		case "allocs/op":
			n := int64(val)
			b.AllocsPerOp = &n
		}
	}
	return b, seen
}

// summarize computes the run statistics from one benchmark's per-run
// ns/op values; vals is sorted in place.
func summarize(vals []float64) Summary {
	sort.Float64s(vals)
	n := len(vals)
	med := vals[n/2]
	if n%2 == 0 {
		med = (vals[n/2-1] + vals[n/2]) / 2
	}
	return Summary{
		Runs:          n,
		MedianNsPerOp: med,
		MinNsPerOp:    vals[0],
		MaxNsPerOp:    vals[n-1],
	}
}

// loadTrajectory reads a prior trajectory file: a JSON array of reports, or
// a legacy single report (the pre-append format), or nothing (missing file).
func loadTrajectory(path string) ([]json.RawMessage, error) {
	raw, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var arr []json.RawMessage
	if err := json.Unmarshal(raw, &arr); err == nil {
		return arr, nil
	}
	var single json.RawMessage
	if err := json.Unmarshal(raw, &single); err != nil {
		return nil, fmt.Errorf("%s is neither a report array nor a single report: %w", path, err)
	}
	return []json.RawMessage{single}, nil
}

func main() {
	appendPath := flag.String("append", "", "trajectory file to append this report to; the combined array goes to stdout")
	flag.Parse()
	rep := Report{Benchmarks: []Benchmark{}, Summary: map[string]Summary{}}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		default:
			if b, ok := parseLine(line, pkg); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	byName := map[string][]float64{}
	for _, b := range rep.Benchmarks {
		key := b.Name
		if b.Pkg != "" {
			key = b.Pkg + "." + b.Name
		}
		byName[key] = append(byName[key], b.NsPerOp)
	}
	for key, vals := range byName {
		rep.Summary[key] = summarize(vals)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	var doc any = rep
	if *appendPath != "" {
		prior, err := loadTrajectory(*appendPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: append:", err)
			os.Exit(1)
		}
		entry, err := json.Marshal(rep)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: encode:", err)
			os.Exit(1)
		}
		doc = append(prior, entry)
	}
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: write:", err)
		os.Exit(1)
	}
}
