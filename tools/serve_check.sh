#!/bin/sh
# serve_check.sh — end-to-end check of the smartfeatd serving daemon
# (make serve-check; wired into CI).
#
# Phase 1 records the quick Diabetes comparison grid sequentially with the
# experiments CLI and keeps its stdout as the golden tables. Phase 2 starts a
# replay-backed daemon on a free port against that recording and requires:
#
#   * a submitted job (the same selection the golden run used) to poll to
#     completion and serve a result byte-identical to the CLI's stdout;
#   * the bounded admission queue to reject overflow with 429 + Retry-After
#     (queue depth 1, single executor — the second queued filler must bounce);
#   * /metrics to expose the serve_* series, with at least one admitted,
#     one completed, and one queue_full rejection counted;
#   * SIGTERM to drain cleanly: in-flight jobs finish, the daemon exits 0.
set -eu

GO="${GO:-go}"
TMP="$(mktemp -d)"
DAEMON_PID=""
cleanup() {
    [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

EXP="$TMP/experiments"
DAEMON="$TMP/smartfeatd"
"$GO" build -o "$EXP" ./cmd/experiments
"$GO" build -o "$DAEMON" ./cmd/smartfeatd

# Comparison selection only: table 4/5 folds are deterministic per cell (the
# efficiency table embeds wall-clock timings and can never diff clean).
ARGS="-table 4 -quick -datasets Diabetes"

echo "serve-check: recording sequential golden run" >&2
"$EXP" $ARGS -run-dir "$TMP/seq" -fm-record "$TMP/fm" >"$TMP/golden.txt" 2>"$TMP/seq.log"

echo "serve-check: starting replay-backed daemon" >&2
"$DAEMON" -addr 127.0.0.1:0 -run-root "$TMP/root" -fm-replay "$TMP/fm" \
    -queue-depth 1 -executors 1 -worker d1 \
    -drain-timeout 120s -retry-after 3s 2>"$TMP/daemon.log" &
DAEMON_PID=$!

tries=0
until grep -q "serving on http://" "$TMP/daemon.log" 2>/dev/null; do
    if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
        echo "serve-check: daemon died on startup; log:" >&2
        cat "$TMP/daemon.log" >&2; exit 1
    fi
    tries=$((tries + 1))
    if [ "$tries" -gt 100 ]; then
        echo "serve-check: daemon never announced its address" >&2
        cat "$TMP/daemon.log" >&2; exit 1
    fi
    sleep 0.1
done
ADDR="$(sed -n 's|^smartfeatd: serving on http://\([^ ]*\).*|\1|p' "$TMP/daemon.log" | head -n 1)"
[ -n "$ADDR" ] || { echo "serve-check: no address in daemon log" >&2; cat "$TMP/daemon.log" >&2; exit 1; }

curl -fsS "http://$ADDR/healthz" >/dev/null || {
    echo "serve-check: /healthz failed" >&2; exit 1; }

# Submit the golden run's selection as job t4. The daemon plans the same
# cells, replays the same recording, and must fold the same bytes.
SPEC='{"name": "t4", "spec": {"table": 4, "quick": true, "datasets": ["Diabetes"]}}'
CODE="$(curl -s -o "$TMP/submit.json" -w '%{http_code}' -X POST \
    -H 'Content-Type: application/json' -H 'X-Tenant: ci' \
    -d "$SPEC" "http://$ADDR/v1/jobs")"
[ "$CODE" = "202" ] || {
    echo "serve-check: submit returned $CODE, want 202:" >&2
    cat "$TMP/submit.json" >&2; exit 1; }
echo "serve-check: job t4 admitted" >&2

# With the single executor occupied by t4 and queue depth 1, the first
# covered filler queues and the next one must bounce with 429 + Retry-After.
FILLER='{"name": "filler-%d", "spec": {"table": 4, "quick": true, "datasets": ["Diabetes"], "methods": ["SMARTFEAT"]}}'
got429=""
i=1
while [ "$i" -le 20 ]; do
    BODY="$(printf "$FILLER" "$i")"
    CODE="$(curl -s -D "$TMP/fill.headers" -o "$TMP/fill.json" -w '%{http_code}' \
        -X POST -H 'Content-Type: application/json' -H 'X-Tenant: ci' \
        -d "$BODY" "http://$ADDR/v1/jobs")"
    if [ "$CODE" = "429" ]; then
        got429=yes
        break
    fi
    [ "$CODE" = "202" ] || {
        echo "serve-check: filler submit returned $CODE, want 202 or 429" >&2
        cat "$TMP/fill.json" >&2; exit 1; }
    i=$((i + 1))
done
[ -n "$got429" ] || { echo "serve-check: queue never overflowed into a 429" >&2; exit 1; }
grep -qi '^retry-after: 3' "$TMP/fill.headers" || {
    echo "serve-check: 429 carried no Retry-After: 3 header:" >&2
    cat "$TMP/fill.headers" >&2; exit 1; }
grep -q '"retry_after": 3' "$TMP/fill.json" || {
    echo "serve-check: 429 body carried no retry_after hint" >&2
    cat "$TMP/fill.json" >&2; exit 1; }
echo "serve-check: admission overflow rejected with 429 + Retry-After" >&2

# Poll t4 to completion (the status endpoint folds live per-cell progress).
tries=0
until curl -fsS "http://$ADDR/v1/jobs/t4" | grep -q '"status": "completed"'; do
    tries=$((tries + 1))
    if [ "$tries" -gt 600 ]; then
        echo "serve-check: job t4 did not complete; last status:" >&2
        curl -fsS "http://$ADDR/v1/jobs/t4" >&2 || true
        cat "$TMP/daemon.log" >&2; exit 1
    fi
    sleep 0.2
done
echo "serve-check: job t4 completed" >&2

curl -fsS "http://$ADDR/v1/jobs/t4/result" >"$TMP/served.txt" || {
    echo "serve-check: fetching the result failed" >&2; exit 1; }
diff "$TMP/golden.txt" "$TMP/served.txt" >&2 || {
    echo "serve-check: served result differs from the CLI golden run" >&2; exit 1; }
echo "serve-check: served result byte-identical to CLI stdout" >&2

# The daemon's registry must expose the serving series alongside the rest.
curl -fsS "http://$ADDR/metrics" >"$TMP/metrics.txt" || {
    echo "serve-check: scraping /metrics failed" >&2; exit 1; }
for series in serve_queue_depth serve_jobs_running serve_jobs_admitted_total \
    serve_jobs_rejected_total serve_jobs_completed_total serve_jobs_failed_total \
    serve_jobs_canceled_total serve_request_seconds_bucket; do
    grep -q "^$series" "$TMP/metrics.txt" || {
        echo "serve-check: /metrics missing series $series; scrape was:" >&2
        cat "$TMP/metrics.txt" >&2; exit 1; }
done
ADMITTED="$(sed -n 's/^serve_jobs_admitted_total \([0-9]*\)$/\1/p' "$TMP/metrics.txt")"
REJECTED="$(sed -n 's/^serve_jobs_rejected_total{reason="queue_full"} \([0-9]*\)$/\1/p' "$TMP/metrics.txt")"
[ -n "$ADMITTED" ] && [ "$ADMITTED" -ge 2 ] || {
    echo "serve-check: serve_jobs_admitted_total = '$ADMITTED', want >= 2" >&2; exit 1; }
[ -n "$REJECTED" ] && [ "$REJECTED" -ge 1 ] || {
    echo "serve-check: serve_jobs_rejected_total{queue_full} = '$REJECTED', want >= 1" >&2; exit 1; }
echo "serve-check: serve_* series present ($ADMITTED admitted, $REJECTED rejected)" >&2

# SIGTERM drain: admitted fillers may still be replaying; the daemon must
# finish them (well inside -drain-timeout at replay speed) and exit 0.
kill -TERM "$DAEMON_PID"
set +e
wait "$DAEMON_PID"
STATUS=$?
set -e
DAEMON_PID=""
[ "$STATUS" = "0" ] || {
    echo "serve-check: daemon exited $STATUS after SIGTERM, want 0; log:" >&2
    cat "$TMP/daemon.log" >&2; exit 1; }
grep -q "drain: all jobs settled" "$TMP/daemon.log" || {
    echo "serve-check: drain did not settle all jobs; log:" >&2
    cat "$TMP/daemon.log" >&2; exit 1; }
echo "serve-check: SIGTERM drain settled all jobs, exit 0" >&2

echo "serve-check: OK" >&2
