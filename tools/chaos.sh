#!/bin/sh
# chaos.sh — chaos-grade resilience check of the FM backend pool
# (make chaos; wired into CI).
#
# Phase 1 records the quick Diabetes comparison grid sequentially and keeps
# its stdout as the golden tables. Phase 2 replays that recording through a
# 3-backend fmgate.Pool under a hostile fault model — 10% transient faults,
# rate-limit errors with retry-after hints, latency jitter, and one scripted
# outage window on backend b2 — and requires the folded tables to be
# byte-identical to the golden output: hedging, failover, breaker trips and
# retries may only ever change *which transport* serves a completion, never
# its content. Phase 3 drives the cmd/smartfeat CLI the same way and greps
# its FM report for proof the machinery actually engaged (breaker opened and
# probed, hedges fired, faults were injected) rather than the run passing
# because nothing went wrong.
set -eu

GO="${GO:-go}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT INT TERM

EXP="$TMP/experiments"
SF="$TMP/smartfeat"
"$GO" build -o "$EXP" ./cmd/experiments
"$GO" build -o "$SF" ./cmd/smartfeat

# The comparison selection only: table 4/5 folds are deterministic per-cell;
# the efficiency table would embed wall-clock timings and can never diff
# clean. No malformed-output faults here — those corrupt completion *content*
# and are exercised by the unit tests; this check pins that transport-level
# chaos alone cannot change results.
ARGS="-table 4 -quick -datasets Diabetes"
FAULTS="rate=0.1,ratelimit=0.03,jitter=4ms,retryafter=10ms,outage=b2:5-25"

echo "chaos: recording sequential golden run" >&2
"$EXP" $ARGS -run-dir "$TMP/seq" -fm-record "$TMP/fm" >"$TMP/golden.txt" 2>"$TMP/seq.log"

echo "chaos: replaying grid through a 3-backend pool under faults" >&2
"$EXP" $ARGS -run-dir "$TMP/chaos" -fm-replay "$TMP/fm" \
    -fm-backends 3 -fm-hedge 2ms -fm-deadline 2s -fm-breaker 3:50ms \
    -fm-retries 8 -fm-faults "$FAULTS" \
    >"$TMP/chaos.txt" 2>"$TMP/chaos.log" || {
    echo "chaos: pooled grid run failed; log:" >&2; cat "$TMP/chaos.log" >&2; exit 1; }
diff "$TMP/golden.txt" "$TMP/chaos.txt" >&2 || {
    echo "chaos: pooled tables differ from sequential run" >&2; exit 1; }
echo "chaos: pooled grid tables byte-identical to sequential" >&2

echo "chaos: smartfeat CLI end-to-end under faults" >&2
"$SF" -dataset Tennis -budget 8 -fm-record "$TMP/sf_fm" -out "$TMP/sf_golden.csv" \
    2>"$TMP/sf_seq.log"
"$SF" -dataset Tennis -budget 8 -fm-replay "$TMP/sf_fm" -out "$TMP/sf_chaos.csv" \
    -fm-backends 3 -fm-hedge 1ms -fm-deadline 2s -fm-breaker 3:10ms \
    -fm-retries 8 -fm-faults "rate=0.08,ratelimit=0.03,jitter=3ms,retryafter=5ms,outage=b2:3-10" \
    2>"$TMP/sf_chaos.log" || {
    echo "chaos: pooled smartfeat run failed; log:" >&2; cat "$TMP/sf_chaos.log" >&2; exit 1; }
diff "$TMP/sf_golden.csv" "$TMP/sf_chaos.csv" >&2 || {
    echo "chaos: pooled smartfeat CSV differs from sequential run" >&2; exit 1; }

# The run must have been genuinely chaotic: the report has to show the
# breaker opening (the b2 outage guarantees consecutive transport failures),
# hedges firing (outage errors trigger immediate hedging), and a nonzero
# injected-fault count.
for want in 'pool:' 'breaker_opens=[1-9]' 'hedges=[1-9]' 'faults_injected=[1-9]'; do
    grep -Eq "$want" "$TMP/sf_chaos.log" || {
        echo "chaos: FM report missing /$want/; report was:" >&2
        cat "$TMP/sf_chaos.log" >&2; exit 1; }
done
echo "chaos: smartfeat CSV byte-identical; breaker + hedge counters present" >&2

echo "chaos: OK" >&2
