GO ?= go
PKGS := ./...
# Kernel-level microbenchmarks (tree/forest/linear fits, ColMatrix, group-by).
KERNEL_BENCH := BenchmarkTreeFit|BenchmarkForestFit|BenchmarkExtraTreesFit|BenchmarkHistogramSplit|BenchmarkLogisticFit|BenchmarkMatrixTakeRows|BenchmarkColMatrix|BenchmarkRowMajorMatrix|BenchmarkDropNANoNulls|BenchmarkSeriesStd|BenchmarkGroupKeys

.PHONY: test race check bench bench-kernel bench-grid bench-json bench-cpu fmt fmt-check vet grid-workers chaos obs-check cache-check serve-check sim-soak

test:
	$(GO) build $(PKGS)
	$(GO) test $(PKGS)

# The race suite runs under a CPU matrix: the worker pools (grid runner,
# parallel CAAFE, fmgate Submit, forest tree fits) degenerate to sequential
# order on the 1-vCPU dev box, so -cpu 4 is what actually exercises their
# interleavings.
race:
	$(GO) test -race -cpu 1,4 $(PKGS)

# Pre-commit gate: formatting, static analysis, then the full suite under
# the race detector across the CPU matrix (the fmgate gateway, the parallel
# evaluation harness and the shared histogram/presort caches are all
# concurrency-bearing — run this before every commit).
check: fmt-check vet race

# Full benchmark sweep: every paper table/figure plus the kernel benches.
bench:
	$(GO) test -bench . -benchmem -run xxx $(PKGS)

# Just the hot-path kernel benches (fast; use for before/after comparisons).
bench-kernel:
	$(GO) test ./internal/ml ./internal/dataframe -bench '$(KERNEL_BENCH)' -benchmem -run xxx -count 3

# Grid-engine overhead benches: artifact/manifest (de)serialization, a full
# 40-cell resume pass, record-shard setup, the FM backend pool's per-call
# transport overhead, and the telemetry layer's hot paths (a disabled span
# must stay at 0 allocs; counter increments are one atomic add). Keeps the
# run engine's fixed costs visible in the perf trajectory (they must stay
# negligible next to cell compute).
GRID_BENCH := BenchmarkArtifactWrite|BenchmarkArtifactRead|BenchmarkManifestSave|BenchmarkGridResume|BenchmarkStoreSetShard|BenchmarkLeaseClaim|BenchmarkPoolComplete|BenchmarkSpanOverhead|BenchmarkRegistryInc|BenchmarkCacheHit
bench-grid:
	$(GO) test ./internal/grid ./internal/fmgate ./internal/obs -bench '$(GRID_BENCH)' -benchmem -run xxx -count 3

# Machine-readable perf trajectory: the kernel and grid bench sweeps piped
# through tools/benchjson into BENCH_kernel.json / BENCH_grid.json. Each
# sweep is APPENDED to the committed trajectory (a JSON array, one report
# per sweep with raw runs plus per-benchmark medians), so the files
# accumulate history instead of overwriting it. CI runs this on every push
# and uploads both files as workflow artifacts. The tmp-then-mv dance keeps
# the append source readable while the new array is being produced.
bench-json:
	$(GO) test ./internal/ml ./internal/dataframe -bench '$(KERNEL_BENCH)' -benchmem -run xxx -count 3 | tee /dev/stderr | $(GO) run ./tools/benchjson -append BENCH_kernel.json > BENCH_kernel.json.tmp && mv BENCH_kernel.json.tmp BENCH_kernel.json
	$(GO) test ./internal/grid ./internal/fmgate ./internal/obs -bench '$(GRID_BENCH)' -benchmem -run xxx -count 3 | tee /dev/stderr | $(GO) run ./tools/benchjson -append BENCH_grid.json > BENCH_grid.json.tmp && mv BENCH_grid.json.tmp BENCH_grid.json

# CPU profile of forest training; inspect with `go tool pprof cpu.out`.
bench-cpu:
	$(GO) test ./internal/ml -bench 'BenchmarkForestFit' -run xxx -cpuprofile cpu.out -benchtime 5s
	@echo "profile written to cpu.out (and ml.test); open with: go tool pprof cpu.out"

# End-to-end distributed-grid check across real processes: record the quick
# grid sequentially, drain it with 3 concurrent -worker processes replaying
# the recording (tables must be byte-identical to the sequential output),
# then repeat with one worker killed mid-run and its lease reclaimed by the
# survivors. CI runs this on every push alongside the bench job.
grid-workers:
	sh tools/grid_workers.sh

# Chaos-grade resilience check: record the quick grid sequentially as a
# golden, then replay it through a 3-backend fmgate.Pool with 10% transient
# faults, rate-limit errors, latency jitter and one scripted outage — the
# tables must stay byte-identical to the golden and the FM report must show
# the breaker opening/probing/closing and hedges firing. CI runs this on
# every push alongside the grid-workers job.
chaos:
	sh tools/chaos.sh

# Observability end-to-end check: replay the quick grid with -trace and a
# live -metrics-addr server — tables must stay byte-identical to an
# unobserved run, /metrics must expose the fmgate/pool/breaker/grid/lease
# series, and trace.jsonl must validate and convert through tools/traceview
# with one span per grid cell. CI runs this on every push.
obs-check:
	sh tools/obs_check.sh

# Tiered completion-cache gate: record the quick grid once, then re-run it
# cold with only -fm-cache-dir pointed at the recording — the disk tier must
# serve ≥ 90% of the recorded completions, the run must make zero upstream
# calls at $0 simulated spend, and the tables must stay byte-identical to
# the sequential golden. CI runs this on every push.
cache-check:
	sh tools/cache_check.sh

# Serving-daemon end-to-end check: record the quick grid sequentially as a
# golden, start a replay-backed smartfeatd on a free port, submit the same
# selection as a job and poll it to completion — the served result must be
# byte-identical to the CLI stdout, queue overflow must reject with 429 +
# Retry-After, /metrics must expose the serve_* series, and a SIGTERM drain
# must settle every job and exit 0. CI runs this on every push.
serve-check:
	sh tools/serve_check.sh

# Multi-seed load soak: record the quick grid once, then once per seed start
# a fresh replay-backed smartfeatd (small admission queue, chaos-injected FM
# pool) and drive it with cmd/loadsim in -strict mode — per-seed the client
# asserts result stability and exact server/client ledger reconciliation;
# across seeds the tables must be byte-identical (the seed perturbs timing,
# never results) and match the CLI golden. Seed 1's latency quantiles are
# appended to the committed BENCH_load.json trajectory. CI runs this with
# SEEDS=3 on every push.
SEEDS ?= 3
sim-soak:
	SEEDS="$(SEEDS)" BENCH_OUT="$(CURDIR)/BENCH_load.json" sh tools/sim_soak.sh

fmt:
	gofmt -l -w .

# Fail (listing the offenders) when any file needs gofmt; the CI check job
# and `make check` gate on this.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet $(PKGS)
