GO ?= go
PKGS := ./...
# Kernel-level microbenchmarks (tree/forest/linear fits, ColMatrix, group-by).
KERNEL_BENCH := BenchmarkTreeFit|BenchmarkForestFit|BenchmarkExtraTreesFit|BenchmarkLogisticFit|BenchmarkMatrixTakeRows|BenchmarkColMatrix|BenchmarkRowMajorMatrix|BenchmarkDropNANoNulls|BenchmarkSeriesStd|BenchmarkGroupKeys

.PHONY: test race check bench bench-kernel bench-grid bench-cpu fmt vet

test:
	$(GO) build $(PKGS)
	$(GO) test $(PKGS)

race:
	$(GO) test -race $(PKGS)

# Pre-commit gate: static analysis plus the full suite under the race
# detector (the fmgate gateway, the parallel evaluation harness and the
# forest presort cache are all concurrency-bearing — run this before every
# commit).
check:
	$(GO) vet $(PKGS)
	$(GO) test -race $(PKGS)

# Full benchmark sweep: every paper table/figure plus the kernel benches.
bench:
	$(GO) test -bench . -benchmem -run xxx $(PKGS)

# Just the hot-path kernel benches (fast; use for before/after comparisons).
bench-kernel:
	$(GO) test ./internal/ml ./internal/dataframe -bench '$(KERNEL_BENCH)' -benchmem -run xxx -count 3

# Grid-engine overhead benches: artifact/manifest (de)serialization, a full
# 40-cell resume pass, and record-shard setup. Keeps the run engine's fixed
# costs visible in the perf trajectory (they must stay negligible next to
# cell compute).
GRID_BENCH := BenchmarkArtifactWrite|BenchmarkArtifactRead|BenchmarkManifestSave|BenchmarkGridResume|BenchmarkStoreSetShard
bench-grid:
	$(GO) test ./internal/grid -bench '$(GRID_BENCH)' -benchmem -run xxx -count 3

# CPU profile of forest training; inspect with `go tool pprof cpu.out`.
bench-cpu:
	$(GO) test ./internal/ml -bench 'BenchmarkForestFit' -run xxx -cpuprofile cpu.out -benchtime 5s
	@echo "profile written to cpu.out (and ml.test); open with: go tool pprof cpu.out"

fmt:
	gofmt -l -w .

vet:
	$(GO) vet $(PKGS)
