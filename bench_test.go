// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§4), plus ablation benches for the design decisions DESIGN.md
// calls out. Each benchmark regenerates its artifact with the scaled-down
// Quick configuration and reports the headline quantities as custom metrics,
// so `go test -bench=. -benchmem` reproduces every result end to end.
//
// The full-scale tables are produced by `go run ./cmd/experiments -all`.
package smartfeat_test

import (
	"context"
	"testing"

	"smartfeat/internal/core"
	"smartfeat/internal/datasets"
	"smartfeat/internal/experiments"
	"smartfeat/internal/fm"
)

// benchConfig is the shared scaled-down evaluation configuration.
func benchConfig() experiments.Config {
	return experiments.QuickConfig()
}

// BenchmarkTable3DatasetStats regenerates Table 3 (dataset statistics).
func BenchmarkTable3DatasetStats(b *testing.B) {
	var rows []datasets.TableStats
	for i := 0; i < b.N; i++ {
		rows = datasets.Table3(benchConfig().Seed)
	}
	b.ReportMetric(float64(len(rows)), "datasets")
	total := 0
	for _, r := range rows {
		total += r.Rows
	}
	b.ReportMetric(float64(total), "total_rows")
}

// BenchmarkTable4AverageAUC regenerates the Table 4 comparison on two
// representative datasets (one small threshold-driven, one ratio-driven) and
// reports the SMARTFEAT average-AUC delta over the initial features.
func BenchmarkTable4AverageAUC(b *testing.B) {
	cfg := benchConfig()
	var delta float64
	for i := 0; i < b.N; i++ {
		avg, _, err := experiments.RunComparison(context.Background(), []string{"Diabetes", "Tennis"}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		delta = avg.Cells[experiments.MethodSmartfeat]["Tennis"] - avg.Initial["Tennis"]
	}
	b.ReportMetric(delta, "sf_tennis_auc_delta")
}

// BenchmarkTable5MedianAUC regenerates the Table 5 (median) aggregate.
func BenchmarkTable5MedianAUC(b *testing.B) {
	cfg := benchConfig()
	var delta float64
	for i := 0; i < b.N; i++ {
		_, median, err := experiments.RunComparison(context.Background(), []string{"Diabetes"}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		delta = median.Cells[experiments.MethodSmartfeat]["Diabetes"] - median.Initial["Diabetes"]
	}
	b.ReportMetric(delta, "sf_diabetes_auc_delta")
}

// BenchmarkTable6FeatureImportance regenerates Table 6 (top-10 importance
// shares on Tennis) and reports SMARTFEAT's IG@10 share.
func BenchmarkTable6FeatureImportance(b *testing.B) {
	cfg := benchConfig()
	var ig float64
	var generated int
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table6FeatureImportance(context.Background(), "Tennis", cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Method == experiments.MethodSmartfeat {
				ig = r.IGAt10
				generated = r.Generated
			}
		}
	}
	b.ReportMetric(ig, "sf_IG@10_pct")
	b.ReportMetric(float64(generated), "sf_generated")
}

// BenchmarkTable7OperatorAblation regenerates Table 7 (operator ablation on
// Tennis) and reports the average-AUC gain of the binary-operator-only
// configuration over the initial features.
func BenchmarkTable7OperatorAblation(b *testing.B) {
	cfg := benchConfig()
	var binaryGain float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table7OperatorAblation(context.Background(), "Tennis", cfg)
		if err != nil {
			b.Fatal(err)
		}
		binaryGain = rows[2].Avg - rows[0].Avg // "+Binary" vs "Initial"
	}
	b.ReportMetric(binaryGain, "binary_avg_auc_gain")
}

// BenchmarkFigure1InteractionCost regenerates the Figure 1 comparison
// (row-level vs feature-level FM interaction) and reports the cost ratio at
// the largest size.
func BenchmarkFigure1InteractionCost(b *testing.B) {
	cfg := benchConfig()
	var ratio float64
	for i := 0; i < b.N; i++ {
		points, err := experiments.Figure1InteractionCosts(context.Background(), []int{100, 2000}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		last := points[len(points)-1]
		if last.FeatureCostUSD > 0 {
			ratio = last.RowCostUSD / last.FeatureCostUSD
		}
	}
	b.ReportMetric(ratio, "rowlevel_vs_featurelevel_cost_x")
}

// BenchmarkFigure2Walkthrough regenerates the Figure 2 walk-through
// (Bucketized Age on the Table 1 insurance example).
func BenchmarkFigure2Walkthrough(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure2Walkthrough(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEfficiency regenerates the §4.2 efficiency comparison on the
// smallest dataset and reports SMARTFEAT's feature-engineering seconds
// (including simulated FM latency).
func BenchmarkEfficiency(b *testing.B) {
	cfg := benchConfig()
	var sfSeconds float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunEfficiency(context.Background(), []string{"Diabetes"}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Method == experiments.MethodSmartfeat {
				sfSeconds = r.Elapsed.Seconds()
			}
		}
	}
	b.ReportMetric(sfSeconds, "sf_seconds")
}

// BenchmarkDescriptionsAblation regenerates the §4.2 feature-description
// ablation and reports the average-AUC drop of names-only input.
func BenchmarkDescriptionsAblation(b *testing.B) {
	cfg := benchConfig()
	var drop float64
	for i := 0; i < b.N; i++ {
		abl, err := experiments.RunDescriptionsAblation(context.Background(), "Tennis", cfg)
		if err != nil {
			b.Fatal(err)
		}
		drop = abl.WithAvg - abl.NamesOnlyAvg
	}
	b.ReportMetric(drop, "names_only_avg_auc_drop")
}

// --- Ablation benches for DESIGN.md §5 design decisions ---

// BenchmarkAblationSelectorVsExhaustive contrasts SMARTFEAT's operator-
// guided candidate count against Featuretools-style exhaustion on Tennis
// (design decision 1: the selector prunes the operator space).
func BenchmarkAblationSelectorVsExhaustive(b *testing.B) {
	cfg := benchConfig()
	var guided, exhaustive int
	for i := 0; i < b.N; i++ {
		d, err := datasets.Load("Tennis", cfg.Seed)
		if err != nil {
			b.Fatal(err)
		}
		clean := d.Frame.DropNA()
		sf := experiments.RunSmartfeat(context.Background(), d, clean, cfg, core.AllOperators())
		ft := experiments.RunFeaturetools(context.Background(), d, clean, cfg)
		guided, exhaustive = sf.Generated, ft.Generated
	}
	b.ReportMetric(float64(guided), "guided_candidates")
	b.ReportMetric(float64(exhaustive), "exhaustive_candidates")
}

// BenchmarkAblationVerification measures the verification filter's effect
// (design decision 4): features kept with and without the §3.3 filter.
func BenchmarkAblationVerification(b *testing.B) {
	cfg := benchConfig()
	d, err := datasets.Load("Diabetes", cfg.Seed)
	if err != nil {
		b.Fatal(err)
	}
	clean := d.Frame.DropNA()
	opts := core.Options{
		Target:            d.Target,
		TargetDescription: d.TargetDescription,
		Descriptions:      d.Descriptions,
		Model:             "RF",
		SamplingBudget:    cfg.SamplingBudget,
	}
	var withFilter, withoutFilter int
	for i := 0; i < b.N; i++ {
		opts.SelectorFM = fm.NewGPT4Sim(cfg.Seed, cfg.FMErrorRate)
		opts.GeneratorFM = fm.NewGPT35Sim(cfg.Seed+1, cfg.FMErrorRate)
		opts.Verify = true
		opts.DropHeuristic = true
		on, err := core.RunRaw(clean, opts)
		if err != nil {
			b.Fatal(err)
		}
		opts.SelectorFM = fm.NewGPT4Sim(cfg.Seed, cfg.FMErrorRate)
		opts.GeneratorFM = fm.NewGPT35Sim(cfg.Seed+1, cfg.FMErrorRate)
		opts.Verify = false
		opts.DropHeuristic = false
		off, err := core.RunRaw(clean, opts)
		if err != nil {
			b.Fatal(err)
		}
		withFilter, withoutFilter = len(on.AddedColumns()), len(off.AddedColumns())
	}
	b.ReportMetric(float64(withFilter), "kept_with_filter")
	b.ReportMetric(float64(withoutFilter), "kept_without_filter")
}

// BenchmarkAblationPromptStrategy contrasts the proposal strategy's FM call
// count against sampling for the unary family (design decision 2): proposal
// asks once per attribute; sampling would pay per candidate.
func BenchmarkAblationPromptStrategy(b *testing.B) {
	cfg := benchConfig()
	d, err := datasets.Load("Diabetes", cfg.Seed)
	if err != nil {
		b.Fatal(err)
	}
	clean := d.Frame.DropNA()
	var proposalCalls int
	for i := 0; i < b.N; i++ {
		res := experiments.RunSmartfeat(context.Background(), d, clean, cfg, core.OperatorSet{Unary: true})
		proposalCalls = res.FMUsage.Calls
	}
	// One proposal prompt per attribute (8 on Diabetes) vs the per-candidate
	// sampling budget it replaces.
	b.ReportMetric(float64(proposalCalls), "fm_calls")
	b.ReportMetric(float64(cfg.SamplingBudget), "sampling_budget_equiv")
}

// BenchmarkSmartfeatPipeline measures the core pipeline itself (feature
// generation only, no model training) on the Table 1 example scale.
func BenchmarkSmartfeatPipeline(b *testing.B) {
	d, err := datasets.Load("Diabetes", 7)
	if err != nil {
		b.Fatal(err)
	}
	clean := d.Frame.DropNA()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := core.Run(clean, core.Options{
			Target:            d.Target,
			TargetDescription: d.TargetDescription,
			Descriptions:      d.Descriptions,
			SelectorFM:        fm.NewGPT4Sim(int64(i), 0),
			GeneratorFM:       fm.NewGPT35Sim(int64(i)+1, 0),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
