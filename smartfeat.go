// Package smartfeat is the public API of the SMARTFEAT reproduction: an
// automated feature engineering tool that interacts with a (simulated)
// foundation model at the feature level — an operator selector proposes
// candidate features from the data agenda, a function generator compiles
// each candidate into an executable dataframe transformation, and a
// verification step filters low-quality results.
//
// Quickstart:
//
//	f, _ := smartfeat.ReadCSVString(csvText)
//	result, err := smartfeat.Run(f, smartfeat.Options{
//	        Target:      "Safe",
//	        Descriptions: map[string]string{"Age": "Age of the policyholder"},
//	        SelectorFM:  smartfeat.NewGPT4Sim(42, 0),
//	        GeneratorFM: smartfeat.NewGPT35Sim(43, 0),
//	})
//
// The result holds the augmented dataframe, a per-candidate report, and the
// foundation-model usage accounting. See examples/ for runnable programs and
// internal/experiments for the paper's full evaluation harness.
package smartfeat

import (
	"context"
	"io"

	"smartfeat/internal/core"
	"smartfeat/internal/dataframe"
	"smartfeat/internal/datasets"
	"smartfeat/internal/fm"
	"smartfeat/internal/fmgate"
)

// Frame is a columnar dataframe (see internal/dataframe for the full API).
type Frame = dataframe.Frame

// Series is a single typed column of a Frame.
type Series = dataframe.Series

// Options configures a SMARTFEAT run (see core.Options for field docs).
type Options = core.Options

// Result is a completed run: augmented frame, per-candidate reports,
// verification outcome and FM usage.
type Result = core.Result

// GeneratedFeature records one candidate's fate.
type GeneratedFeature = core.GeneratedFeature

// OperatorSet toggles operator families (unary/binary/high-order/extractor).
type OperatorSet = core.OperatorSet

// TransformSpec is the executable-transformation vocabulary the function
// generator emits.
type TransformSpec = core.TransformSpec

// FM is the foundation-model interface SMARTFEAT talks to.
type FM = fm.Model

// Usage is cumulative FM accounting (calls, tokens, simulated latency/cost).
type Usage = fm.Usage

// Dataset is one of the paper's evaluation datasets with its data card.
type Dataset = datasets.Dataset

// Candidate feature statuses.
const (
	StatusAdded           = core.StatusAdded
	StatusRowLevel        = core.StatusRowLevel
	StatusRowLevelSkipped = core.StatusRowLevelSkipped
	StatusDataSource      = core.StatusDataSource
	StatusFailed          = core.StatusFailed
	StatusFiltered        = core.StatusFiltered
)

// Gateway is the FM traffic layer: caching, in-flight deduplication,
// bounded-concurrency submission, retries and record/replay over any FM.
type Gateway = fmgate.Gateway

// GatewayOptions configures a Gateway.
type GatewayOptions = fmgate.Options

// NewGateway wraps an FM in a gateway; the result is itself an FM, so it
// plugs into Options.SelectorFM / Options.GeneratorFM directly.
func NewGateway(model FM, opts GatewayOptions) *Gateway {
	return fmgate.New(model, opts)
}

// Run executes the SMARTFEAT pipeline on a copy of the frame.
func Run(f *Frame, opts Options) (*Result, error) {
	return core.Run(f, opts)
}

// RunContext is Run with cancellation threaded through every FM call. On
// cancellation it returns the partial result (with usage accounting of the
// spend so far) alongside the context's error.
func RunContext(ctx context.Context, f *Frame, opts Options) (*Result, error) {
	return core.RunContext(ctx, f, opts)
}

// AllOperators enables every operator family.
func AllOperators() OperatorSet { return core.AllOperators() }

// NewGPT4Sim builds the simulated operator-selector model (the paper uses
// GPT-4 for the operator selector). errorRate injects malformed completions.
func NewGPT4Sim(seed int64, errorRate float64) FM {
	return fm.NewGPT4Sim(seed, errorRate)
}

// NewGPT35Sim builds the simulated function-generator model (GPT-3.5-turbo
// in the paper).
func NewGPT35Sim(seed int64, errorRate float64) FM {
	return fm.NewGPT35Sim(seed, errorRate)
}

// ReadCSV parses CSV with a header row into a Frame, inferring column types.
func ReadCSV(r io.Reader) (*Frame, error) { return dataframe.ReadCSV(r) }

// ReadCSVString parses CSV text into a Frame.
func ReadCSVString(s string) (*Frame, error) { return dataframe.ReadCSVString(s) }

// NewFrame returns an empty Frame.
func NewFrame() *Frame { return dataframe.New() }

// LoadDataset generates one of the paper's eight evaluation datasets
// ("Diabetes", "Heart", "Bank", "Adult", "Housing", "Lawschool",
// "West Nile Virus", "Tennis") with the given seed.
func LoadDataset(name string, seed int64) (*Dataset, error) {
	return datasets.Load(name, seed)
}

// DatasetNames lists the paper's datasets in Table 3 order.
func DatasetNames() []string { return datasets.Names() }

// CompleteRows performs row-level FM completions for the first n rows of the
// frame — the per-entry interaction style of the paper's Figure 1 that
// SMARTFEAT's feature-level design avoids. Exposed so the cost comparison is
// reproducible against the same accounting. When model is a *Gateway the
// rows fan out concurrently under its concurrency bound.
func CompleteRows(ctx context.Context, model FM, f *Frame, feature string, n int) ([]float64, error) {
	return core.CompleteRows(ctx, model, f, feature, n)
}
