// Rowlevel: the Figure 1 cost comparison — obtaining one new feature through
// row-level FM completions versus SMARTFEAT's feature-level interaction, on
// growing prefixes of the Bank dataset. Row-level cost grows linearly with
// the row count; feature-level cost depends only on the schema.
//
// The row-level pass runs through the fmgate gateway: rows are submitted
// concurrently (bounded fan-out over the per-call latency) and duplicate
// rows are served from the content-addressed completion cache instead of
// being paid for again.
//
//	go run ./examples/rowlevel
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"smartfeat"
)

func main() {
	ctx := context.Background()
	d, err := smartfeat.LoadDataset("Bank", 2024)
	if err != nil {
		log.Fatal(err)
	}
	full := d.Frame.DropNA()
	fmt.Println("Row-level (via fmgate gateway) vs feature-level FM interaction (simulated GPT pricing):")
	fmt.Printf("%8s | %12s %10s %12s %14s | %12s %12s %14s\n",
		"rows", "row calls", "cached", "row $", "row latency", "feat calls", "feat $", "feat latency")
	for _, n := range []int{100, 1000, 5000, 20000} {
		rows := make([]int, n)
		for i := range rows {
			rows[i] = i
		}
		sub := full.Take(rows)

		// Row-level: serialize every entry, ask for the masked value — but
		// through the gateway, so identical rows hit the cache and the rest
		// fan out eight at a time.
		gw := smartfeat.NewGateway(smartfeat.NewGPT35Sim(int64(n), 0), smartfeat.GatewayOptions{
			CacheSize:   1 << 16,
			Concurrency: 8,
		})
		if _, err := smartfeat.CompleteRows(ctx, gw, sub, "Estimated_Subscription_Propensity", n); err != nil {
			log.Fatal(err)
		}
		ru := gw.Usage()
		gm := gw.Metrics()

		// Feature-level: the whole SMARTFEAT pipeline on the same rows.
		res, err := smartfeat.RunContext(ctx, sub, smartfeat.Options{
			Target:            d.Target,
			TargetDescription: d.TargetDescription,
			Descriptions:      d.Descriptions,
			SelectorFM:        smartfeat.NewGPT4Sim(1, 0),
			GeneratorFM:       smartfeat.NewGPT35Sim(2, 0),
		})
		if err != nil {
			log.Fatal(err)
		}
		fu := res.SelectorUsage
		fu.Add(res.GeneratorUsage)
		fmt.Printf("%8d | %12d %10d %12.2f %14s | %12d %12.2f %14s\n",
			n, ru.Calls, gm.Saved(), ru.SimCostUSD, ru.SimLatency.Round(time.Second),
			fu.Calls, fu.SimCostUSD, fu.SimLatency.Round(time.Second))
	}
	fmt.Println("\nThe row-level column buys ONE feature; the feature-level budget built a whole feature set.")
}
