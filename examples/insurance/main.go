// Insurance: the paper's motivating Example 1.1 (Table 1) end to end —
// SMARTFEAT constructs the four features the introduction promises:
//
//	F1 Bucketized Age            (unary, with the practical 21-year threshold)
//	F2 Manufacturing year of car (unary years_since on the car's age)
//	F3 Claim probability per car (high-order GroupbyThenAvg)
//	F4 City population density   (extractor using open-world knowledge)
//
//	go run ./examples/insurance
package main

import (
	"fmt"
	"log"
	"strings"

	"smartfeat"
)

const insuranceCSV = `Sex,Age,Age of car,Make,Claim in last 6 month,City,Safe
M,21,6,Honda,1,SF,0
F,35,2,Toyota,0,LA,1
M,42,8,Ford,0,SEA,1
F,22,14,Chevrolet,1,SF,0
M,45,3,BMW,0,SEA,1
F,56,5,Volkswagen,0,LA,1
M,33,4,Honda,0,SF,1
F,28,9,Toyota,1,LA,0
M,51,1,Ford,0,SEA,1
F,24,11,Chevrolet,1,SF,0
M,38,7,BMW,0,LA,1
F,47,2,Volkswagen,0,SEA,1
`

func main() {
	frame, err := smartfeat.ReadCSVString(insuranceCSV)
	if err != nil {
		log.Fatal(err)
	}
	result, err := smartfeat.Run(frame, smartfeat.Options{
		Target:            "Safe",
		TargetDescription: "Whether the policyholder is safe and unlikely to file a claim within 6 months (1 = safe)",
		Descriptions: map[string]string{
			"Sex":                   "Sex of the policyholder",
			"Age":                   "Age of the policyholder in years",
			"Age of car":            "Age of the insured car in years",
			"Make":                  "Manufacturer of the car",
			"Claim in last 6 month": "Number of claims filed in the last 6 months",
			"City":                  "City of residence",
		},
		Model:          "Decision Tree",
		SelectorFM:     smartfeat.NewGPT4Sim(7, 0),
		GeneratorFM:    smartfeat.NewGPT35Sim(8, 0),
		SamplingBudget: 10,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Candidate features and their fate:")
	for _, g := range result.Features {
		fmt.Printf("  %-50s %-11s %s\n", g.Candidate.Name, g.Candidate.Operator, g.Status)
	}

	show := func(title, col string) {
		c := result.Frame.Column(col)
		if c == nil {
			fmt.Printf("\n%s: (not generated in this run)\n", title)
			return
		}
		vals := make([]string, 0, 6)
		for i := 0; i < 6; i++ {
			vals = append(vals, c.ValueString(i))
		}
		fmt.Printf("\n%s → %s\n  first rows: %s\n", title, col, strings.Join(vals, ", "))
	}
	show("F1 Bucketized Age", "Bucketize_Age")
	show("F2 Manufacturing year of the car", "Years_since_Age_of_car")
	for _, name := range result.Frame.Names() {
		if strings.HasPrefix(name, "GroupBy_Make") {
			show("F3 Claim history per car make", name)
		}
		if strings.HasPrefix(name, "Population_Density") {
			show("F4 City population density (open-world knowledge)", name)
		}
	}
	if s := result.Suggestions(); len(s) > 0 {
		fmt.Println("\nSuggested external data sources:")
		for _, line := range s {
			fmt.Println("  -", line)
		}
	}
	fmt.Println("\nFM accounting:")
	fmt.Println("  selector: ", result.SelectorUsage)
	fmt.Println("  generator:", result.GeneratorUsage)
}
