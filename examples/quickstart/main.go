// Quickstart: run SMARTFEAT on a small CSV and inspect what it builds.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"smartfeat"
)

const csvData = `CustomerAge,AnnualIncome,NumPurchases,LastPurchaseDays,City,Churned
34,52000,12,10,SF,0
21,31000,2,180,LA,1
45,88000,30,5,SEA,0
52,61000,8,45,SF,0
23,28000,1,200,LA,1
38,73000,22,12,SEA,0
29,41000,4,90,SF,1
61,95000,28,8,LA,0
26,35000,3,150,SEA,1
47,82000,19,20,SF,0
33,48000,6,75,LA,1
55,90000,25,15,SEA,0
`

func main() {
	frame, err := smartfeat.ReadCSVString(csvData)
	if err != nil {
		log.Fatal(err)
	}

	result, err := smartfeat.Run(frame, smartfeat.Options{
		Target:            "Churned",
		TargetDescription: "Whether the customer churned within 90 days (1 = churned)",
		Descriptions: map[string]string{
			"CustomerAge":      "Age of the customer in years",
			"AnnualIncome":     "Annual income of the customer in dollars",
			"NumPurchases":     "Number of purchases in the last year",
			"LastPurchaseDays": "Days since the last purchase",
			"City":             "City of residence",
		},
		Model: "RF",
		// The simulated FM stands in for GPT-4 / GPT-3.5-turbo (see DESIGN.md).
		SelectorFM:  smartfeat.NewGPT4Sim(42, 0),
		GeneratorFM: smartfeat.NewGPT35Sim(43, 0),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Generated %d candidates; %d features kept.\n\n", len(result.Features), len(result.AddedColumns()))
	for _, g := range result.Features {
		fmt.Printf("%-40s operator=%-11s status=%-10s inputs=%v\n",
			g.Candidate.Name, g.Candidate.Operator, g.Status, g.Candidate.Inputs)
	}
	fmt.Println("\nAugmented dataset columns:", result.Frame.Names())
	fmt.Println("\nFM accounting:")
	fmt.Println("  selector: ", result.SelectorUsage)
	fmt.Println("  generator:", result.GeneratorUsage)
}
