package smartfeat_test

import (
	"context"
	"strings"
	"testing"

	"smartfeat"
)

const facadeCSV = `Age,Income,Visits,City,Label
25,40000,3,SF,0
34,52000,12,LA,1
45,88000,30,SEA,1
52,61000,8,SF,0
23,28000,1,LA,0
38,73000,22,SEA,1
29,41000,4,SF,0
61,95000,28,LA,1
26,35000,3,SEA,0
47,82000,19,SF,1
33,48000,6,LA,0
55,90000,25,SEA,1
`

func TestFacadeRun(t *testing.T) {
	f, err := smartfeat.ReadCSVString(facadeCSV)
	if err != nil {
		t.Fatal(err)
	}
	res, err := smartfeat.Run(f, smartfeat.Options{
		Target:      "Label",
		SelectorFM:  smartfeat.NewGPT4Sim(1, 0),
		GeneratorFM: smartfeat.NewGPT35Sim(2, 0),
		Descriptions: map[string]string{
			"Age":    "Age of the customer in years",
			"Income": "Annual income in dollars",
			"Visits": "Number of store visits last year",
			"City":   "City of residence",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Features) == 0 {
		t.Fatal("no candidates generated through the facade")
	}
	if res.SelectorUsage.Calls == 0 {
		t.Fatal("usage not surfaced")
	}
	// Age must have been bucketized with the KB's 21-year threshold.
	if !res.Frame.Has("Bucketize_Age") {
		t.Fatalf("expected Bucketize_Age; columns: %v", res.Frame.Names())
	}
}

func TestFacadeDatasets(t *testing.T) {
	names := smartfeat.DatasetNames()
	if len(names) != 8 {
		t.Fatalf("want 8 datasets, got %d", len(names))
	}
	d, err := smartfeat.LoadDataset("Tennis", 7)
	if err != nil {
		t.Fatal(err)
	}
	if d.Frame.Len() != 944 {
		t.Fatalf("tennis rows = %d", d.Frame.Len())
	}
	if _, err := smartfeat.LoadDataset("Nope", 7); err == nil {
		t.Fatal("unknown dataset should error")
	}
}

func TestFacadeCompleteRows(t *testing.T) {
	f, err := smartfeat.ReadCSVString("City,Age\nSF,21\nLA,33\n")
	if err != nil {
		t.Fatal(err)
	}
	vals, err := smartfeat.CompleteRows(context.Background(), smartfeat.NewGPT35Sim(1, 0), f, "Population_Density", 2)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != 18838 || vals[1] != 8304 {
		t.Fatalf("row completions wrong: %v", vals)
	}
}

func TestFacadeStatuses(t *testing.T) {
	all := []string{
		string(smartfeat.StatusAdded), string(smartfeat.StatusRowLevel),
		string(smartfeat.StatusRowLevelSkipped), string(smartfeat.StatusDataSource),
		string(smartfeat.StatusFailed), string(smartfeat.StatusFiltered),
	}
	if strings.Join(all, ",") == "" {
		t.Fatal("statuses must be exported")
	}
	if !smartfeat.AllOperators().Unary {
		t.Fatal("AllOperators should enable unary")
	}
}
