module smartfeat

go 1.24.0
