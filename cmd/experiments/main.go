// Command experiments regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	experiments -table 3            # dataset statistics
//	experiments -table 4            # average AUC comparison (also prints 5)
//	experiments -table 6            # feature importance shares (Tennis)
//	experiments -table 7            # operator ablation (Tennis)
//	experiments -figure 1           # row-level vs feature-level cost
//	experiments -figure 2           # Bucketized Age walkthrough
//	experiments -efficiency         # per-method timing
//	experiments -descriptions       # feature-description ablation
//	experiments -all                # everything
//
// Add -quick for the scaled-down configuration, -datasets to restrict the
// comparison to a comma-separated subset, and -workers to bound the
// (dataset × method × model) evaluation parallelism.
//
// # The grid engine
//
// Any of the flags below switch the run onto the cell-addressed grid
// engine: the selected tables and figures decompose into (dataset × method)
// cells, scheduled on the worker pool with per-cell seeding (results are
// bit-identical to a sequential run) and folded back into tables from
// per-cell artifacts:
//
//	-run-dir DIR    persist one JSON artifact per completed cell plus a
//	                manifest under DIR; a fresh run refuses a directory that
//	                already holds one
//	-resume DIR     continue an interrupted run: completed cells load from
//	                their artifacts (config-hash checked), everything else
//	                executes; Ctrl-C leaves the directory resumable again
//	-fm-record DIR  record every cell's FM traffic into per-cell shards
//	                (DIR/<dataset>__<method>.jsonl + manifest)
//	-fm-replay PATH replay FM traffic. A directory replays per-cell shards —
//	                any subset of the recorded grid, down to a single cell —
//	                failing loudly on a config-hash mismatch; a file replays
//	                a legacy monolithic recording (SMARTFEAT cells only)
//	-methods LIST   restrict the comparison grid's method cells
//	-keep-going     run every cell even after one fails (default fail-fast
//	                skips unstarted cells, reporting them as skipped)
//
// Efficiency rows under the grid engine are folded from the comparison
// cells' own accounting (per-cell cost attribution) instead of re-running
// the methods sequentially; timings are therefore contended but every FM
// counter is exact. Ctrl-C cancels in-flight cells; with -run-dir/-resume
// the interrupted grid resumes incrementally.
//
// # Multi-worker runs
//
// -worker <id> turns the run directory into a shared job queue: N
// processes with distinct ids pointed at the same -run-dir (and the same
// selection flags) drain one plan concurrently, coordinating through
// lease files under <run-dir>/leases — no external services. Each worker
// executes only the cells it claims; a completed artifact always wins over
// any lease; a worker killed mid-cell stops heartbeating its lease, and
// after -lease-ttl any peer reclaims the cell. Workers that finish early
// wait for their peers' artifacts, so every worker folds and prints the
// complete tables; cells still held elsewhere when a worker is interrupted
// render as '?' (in progress on another worker). The same recording
// directory (-fm-replay) can back any number of workers.
//
//	experiments -table 4 -quick -run-dir runs/t4 -fm-replay rec/ -worker w1 &
//	experiments -table 4 -quick -run-dir runs/t4 -fm-replay rec/ -worker w2 &
//
// # Observability
//
//	-metrics-addr ADDR  serve /metrics (Prometheus text; ?format=json) and
//	                    /debug/pprof for the duration of the run
//	-metrics-linger D   keep the metrics server up D after a successful run
//	                    (CI scrapes a finished run before it exits)
//	-trace              record a span trace — one span per grid cell, FM
//	                    call, CAAFE iteration and model fit — to trace.jsonl
//	                    in the run directory (./trace.jsonl without one);
//	                    convert with tools/traceview for Perfetto
//
// Either switch also prints a run-end profile (phase timings, FM latency
// percentiles, cost) to stderr; with a run directory it is written to
// profile.json. Tables on stdout are byte-identical with or without
// observability. See PERF.md, "Observability".
//
// # Completion cache
//
//	-fm-cache-dir DIR   read-through disk tier over DIR's record shards: a
//	                    completion any run already recorded there (config-hash
//	                    checked) is served at $0 instead of calling upstream;
//	                    workers sharing DIR serve each other's completions.
//	                    A fully covered run is byte-identical to its
//	                    recording. Rejected with -fm-replay (redundant)
//	-fm-cache-size N    in-process LRU capacity (entries; affects the config
//	                    fingerprint). Without it the LRU holds only
//	                    disk-promoted entries, so attaching a cache dir never
//	                    changes results
//
// # Run-directory GC
//
//	experiments -gc runs/ -gc-keep 3 -gc-cache-mb 256
//
// applies the retention policy to a directory of run dirs: per config
// hash the newest -gc-keep runs are kept, older ones deleted, and
// orphaned lease files (completed cell, stale heartbeat, reap tombstones)
// are swept from the kept runs. Shard directories (FM recordings used as
// completion caches) get the cache sweep instead: with -gc-cache-mb their
// stale live-* cache shards are evicted oldest-first until under the byte
// cap, and orphaned cache-index.json snapshots are removed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"smartfeat/internal/datasets"
	"smartfeat/internal/experiments"
	"smartfeat/internal/fmgate"
	"smartfeat/internal/grid"
	"smartfeat/internal/lease"
	"smartfeat/internal/obs"
)

// selections carries the parsed table/figure switches.
type selections struct {
	table        int
	figure       int
	efficiency   bool
	descriptions bool
	all          bool
}

func (s selections) any() bool {
	return s.table != 0 || s.figure != 0 || s.efficiency || s.descriptions || s.all
}

// grid maps the parsed flags onto the shared plan/fold seam (grid.Selection)
// so the CLI and the smartfeatd daemon render byte-identical tables.
func (s selections) grid() grid.Selection {
	return grid.Selection{
		Table:        s.table,
		Figure:       s.figure,
		Efficiency:   s.efficiency,
		Descriptions: s.descriptions,
		All:          s.all,
	}
}

// figure1Sizes returns the Figure 1 size series for the selection.
func (s selections) figure1Sizes() []int {
	return grid.DefaultFigure1Sizes(s.all)
}

func main() {
	var sel selections
	flag.IntVar(&sel.table, "table", 0, "table number to regenerate (3, 4, 5, 6, 7)")
	flag.IntVar(&sel.figure, "figure", 0, "figure number to regenerate (1, 2)")
	flag.BoolVar(&sel.efficiency, "efficiency", false, "run the efficiency comparison")
	flag.BoolVar(&sel.descriptions, "descriptions", false, "run the feature-description ablation")
	flag.BoolVar(&sel.all, "all", false, "run everything")
	quick := flag.Bool("quick", false, "use the scaled-down configuration")
	seed := flag.Int64("seed", 0, "override the experiment seed")
	names := flag.String("datasets", "", "comma-separated dataset subset (default: all eight)")
	methodsFlag := flag.String("methods", "", "comma-separated comparison-method subset for the grid engine (e.g. 'SMARTFEAT,CAAFE'; 'Initial AUC' is always included)")
	workers := flag.Int("workers", 0, "evaluation parallelism: (dataset × method) cells and per-model training (0 = GOMAXPROCS, 1 = sequential; results are identical at any setting)")
	fmCache := flag.Bool("fm-cache", false, "cache deterministic FM completions inside each cell (content-addressed LRU)")
	fmCacheSize := flag.Int("fm-cache-size", 0, "in-process LRU capacity in completions (implies -fm-cache; like -fm-cache this changes the config fingerprint — cached runs are self-consistent but not bit-identical to uncached ones)")
	fmCacheDir := flag.String("fm-cache-dir", "", "cross-process completion-cache directory: a content-addressed read-through index over FM shard files (e.g. an -fm-record directory), serving completions a peer worker already paid for at $0; config-hash checked, disk hits carry replay semantics so a fully-covered run stays byte-identical")
	fmRecord := flag.String("fm-record", "", "record per-cell FM shards (JSONL + manifest) into this directory; the whole selected grid is recorded in one run")
	fmReplay := flag.String("fm-replay", "", "replay FM completions at zero simulated cost: a directory of per-cell shards (from -fm-record; config-hash checked, any cell subset) or a legacy monolithic recording file")
	fmConcurrency := flag.Int("fm-concurrency", 0, "bound on each gateway's concurrent in-flight FM calls (0 = default 8)")
	fmBackends := flag.Int("fm-backends", 0, "route FM traffic through a resilient pool of N replica backends (circuit breakers, least-loaded selection; 0 = no pool)")
	fmHedge := flag.Duration("fm-hedge", 0, "hedge FM calls: fire a duplicate on a second backend after this delay, first success wins (0 = off; needs -fm-backends >= 2)")
	fmDeadline := flag.Duration("fm-deadline", 0, "per-FM-call deadline budget; a stuck backend fails the call transiently instead of holding the cell (0 = none)")
	fmBreaker := flag.String("fm-breaker", "", "per-backend circuit breaker as THRESHOLD[:COOLDOWN], e.g. '3' or '3:50ms' (consecutive transport failures to open; delay before the half-open probe)")
	fmRetries := flag.Int("fm-retries", 0, "gateway retry budget for transient FM errors (0 = fail fast, or 4 when -fm-faults is set)")
	fmFaults := flag.String("fm-faults", "", "per-backend injected fault model, e.g. 'rate=0.1,ratelimit=0.03,hang=0.01,malformed=0.02,jitter=4ms,retryafter=10ms,outage=b2:5-25' (needs -fm-backends)")
	runDir := flag.String("run-dir", "", "persist per-cell artifacts and a run manifest into this directory (the grid engine's resumable run directory)")
	resume := flag.String("resume", "", "resume an interrupted run directory: completed cells load from artifacts and are skipped")
	keepGoing := flag.Bool("keep-going", false, "run every grid cell even after one fails (default: fail fast, skipping unstarted cells)")
	worker := flag.String("worker", "", "worker id for a multi-process run: N processes with distinct ids and one -run-dir drain the same grid concurrently via filesystem leases")
	leaseTTL := flag.Duration("lease-ttl", 0, "staleness threshold for peer leases in -worker mode (0 = 30s): a worker silent this long is presumed crashed and its cells are reclaimed")
	gcDir := flag.String("gc", "", "compact this directory of run dirs (keep the newest -gc-keep runs per config hash, sweep orphaned leases) and exit")
	gcKeep := flag.Int("gc-keep", 3, "runs to keep per config hash under -gc")
	gcCacheMB := flag.Int("gc-cache-mb", 0, "under -gc, cap each FM shard directory's total *.jsonl size: stale live-* cache shards (older than -lease-ttl) are evicted oldest-first until under the cap (0 = no cap; cell shards are never touched)")
	metricsAddr := flag.String("metrics-addr", "", "serve the process metrics registry ('/metrics', Prometheus text or ?format=json) and /debug/pprof on this address for the duration of the run (e.g. 'localhost:9090'; ':0' picks a free port)")
	metricsLinger := flag.Duration("metrics-linger", 0, "keep the -metrics-addr server up this long after a successful run (lets CI scrape a finished run)")
	traceFlag := flag.Bool("trace", false, "record a span trace — grid cells, FM calls, CAAFE iterations, model fits — to trace.jsonl in the run directory (or ./trace.jsonl without one); convert with tools/traceview. Tables are byte-identical with or without tracing")
	flag.Parse()

	if *gcDir != "" {
		rep, err := grid.Compact(*gcDir, grid.CompactOptions{KeepN: *gcKeep, TTL: *leaseTTL, CacheMB: *gcCacheMB})
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Printf("gc: kept %d run(s), removed %d run(s), swept %d orphaned lease file(s), evicted %d cache file(s) (%d bytes)\n",
			len(rep.Kept), len(rep.RemovedRuns), len(rep.RemovedLeases), len(rep.RemovedCacheFiles), rep.CacheBytesFreed)
		for _, d := range rep.RemovedRuns {
			fmt.Println("gc: removed run", d)
		}
		for _, l := range rep.RemovedLeases {
			fmt.Println("gc: swept lease", l)
		}
		for _, c := range rep.RemovedCacheFiles {
			fmt.Println("gc: evicted cache file", c)
		}
		return
	}

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Workers = *workers
	if *fmCache {
		cfg.FMCacheSize = 1 << 14
	}
	if *fmCacheSize > 0 {
		cfg.FMCacheSize = *fmCacheSize
	}
	cfg.FMConcurrency = *fmConcurrency

	if *fmBackends > 0 {
		spec := &fmgate.PoolSpec{
			Backends: *fmBackends,
			Hedge:    *fmHedge,
			Deadline: *fmDeadline,
			Retries:  *fmRetries,
			Seed:     cfg.Seed,
		}
		if *fmBreaker != "" {
			br, err := fmgate.ParseBreaker(*fmBreaker)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(2)
			}
			spec.Breaker = br
		}
		if *fmFaults != "" {
			fs, err := fmgate.ParseFaultSpec(*fmFaults)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(2)
			}
			if *fmRecord != "" && fs.Malformed > 0 {
				fmt.Fprintln(os.Stderr, "experiments: -fm-faults malformed>0 with -fm-record would record corrupted completions; record clean traffic and inject faults on replay")
				os.Exit(2)
			}
			spec.Faults = fs
		}
		cfg.FMPool = spec
	} else if *fmHedge != 0 || *fmDeadline != 0 || *fmBreaker != "" || *fmFaults != "" || *fmRetries != 0 {
		fmt.Fprintln(os.Stderr, "experiments: -fm-hedge/-fm-deadline/-fm-breaker/-fm-faults/-fm-retries need -fm-backends >= 1")
		os.Exit(2)
	}

	// The disk cache tier opens after every fingerprint-bearing flag has
	// landed in cfg: the directory's manifest is validated against (or
	// stamped with) this run's exact config hash.
	if *fmCacheDir != "" {
		if *fmReplay != "" {
			fmt.Fprintln(os.Stderr, "experiments: -fm-cache-dir with -fm-replay is redundant — replay already serves every completion at $0; drop one")
			os.Exit(2)
		}
		dc, err := fmgate.OpenDiskCache(*fmCacheDir, fmgate.DiskCacheOptions{
			ConfigHash: cfg.Fingerprint(),
			Worker:     *worker,
			Live:       *fmRecord == "",
			Locker:     lease.NewMutex(filepath.Join(*fmCacheDir, "manifest.json.lock"), *leaseTTL),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer dc.Close()
		cfg.FMDiskCache = dc
	}

	selected := datasets.Names()
	if *names != "" {
		selected = nil
		for _, n := range strings.Split(*names, ",") {
			selected = append(selected, strings.TrimSpace(n))
		}
	}
	var methods []string
	if *methodsFlag != "" {
		methods = []string{experiments.MethodInitial}
		for _, m := range strings.Split(*methodsFlag, ",") {
			if m = strings.TrimSpace(m); m != "" && m != experiments.MethodInitial {
				methods = append(methods, m)
			}
		}
	}

	// Ctrl-C / SIGTERM cancels in-flight cells; with a run directory the
	// interrupted grid resumes incrementally via -resume.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	gridMode := *runDir != "" || *resume != "" || *fmRecord != "" || *keepGoing ||
		*worker != "" || methods != nil || isDir(*fmReplay)

	// Observability: both switches feed the same process-wide registry; the
	// tables on stdout are byte-identical with or without them.
	obsOn := *metricsAddr != "" || *traceFlag
	if *metricsAddr != "" {
		srv, err := obs.ListenAndServe(*metricsAddr, obs.Default)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "obs: serving /metrics and /debug/pprof on http://%s\n", srv.Addr)
		defer func() {
			if *metricsLinger > 0 {
				fmt.Fprintf(os.Stderr, "obs: metrics server lingering %s (scrape http://%s/metrics)\n", *metricsLinger, srv.Addr)
				time.Sleep(*metricsLinger)
			}
			srv.Close()
		}()
	}
	if *traceFlag {
		path := "trace.jsonl"
		if dir := firstNonEmpty(*resume, *runDir); gridMode && dir != "" {
			// The runner would create the directory anyway; creating it here
			// just lets the trace live beside the manifest from the start.
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			path = filepath.Join(dir, "trace.jsonl")
		}
		tr, err := obs.Create(path, "experiments")
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer tr.Close()
		ctx = obs.WithTracer(ctx, tr)
		fmt.Fprintf(os.Stderr, "obs: tracing spans to %s\n", path)
	}
	prof := obs.NewProfile(nil)

	var err error
	if gridMode {
		err = runGrid(ctx, sel, selected, methods, cfg, gridOptions{
			runDir: *runDir, resume: *resume, fmRecord: *fmRecord, fmReplay: *fmReplay,
			keepGoing: *keepGoing, quick: *quick, worker: *worker, leaseTTL: *leaseTTL,
			prof: prof,
		})
	} else {
		cfg.FMReplayPath = *fmReplay
		done := prof.Phase("run")
		err = run(ctx, sel, selected, cfg)
		done()
	}
	if obsOn {
		prof.Fill()
		fmt.Fprintln(os.Stderr, prof.Table())
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		if errors.Is(err, context.Canceled) {
			os.Exit(130)
		}
		os.Exit(1)
	}
}

// firstNonEmpty returns the first non-empty string.
func firstNonEmpty(a, b string) string {
	if a != "" {
		return a
	}
	return b
}

// run is the in-memory path: no artifacts, no sharded stores.
func run(ctx context.Context, sel selections, names []string, cfg experiments.Config) error {
	if !sel.any() {
		return fmt.Errorf("nothing selected; use -table, -figure, -efficiency, -descriptions or -all")
	}
	if sel.table == 3 || sel.all {
		fmt.Println(experiments.Table3String(cfg))
	}
	if sel.table == 4 || sel.table == 5 || sel.all {
		avg, median, err := experiments.RunComparison(ctx, names, cfg)
		if err != nil {
			return err
		}
		fmt.Println(avg)
		fmt.Println(median)
	}
	if sel.table == 6 || sel.all {
		rows, err := experiments.Table6FeatureImportance(ctx, "Tennis", cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.Table6String(rows))
	}
	if sel.table == 7 || sel.all {
		rows, err := experiments.Table7OperatorAblation(ctx, "Tennis", cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.Table7String(rows, cfg.Models))
	}
	if sel.figure == 1 || sel.all {
		points, err := experiments.Figure1InteractionCosts(ctx, sel.figure1Sizes(), cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.Figure1String(points))
	}
	if sel.figure == 2 || sel.all {
		out, err := experiments.Figure2Walkthrough(ctx, cfg)
		if err != nil {
			return err
		}
		fmt.Println(out)
	}
	if sel.efficiency || sel.all {
		rows, err := experiments.RunEfficiency(ctx, names, cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.EfficiencyString(rows))
	}
	if sel.descriptions || sel.all {
		abl, err := experiments.RunDescriptionsAblation(ctx, "Tennis", cfg)
		if err != nil {
			return err
		}
		fmt.Println(abl)
	}
	return nil
}

// gridOptions carries the engine flags.
type gridOptions struct {
	runDir, resume     string
	fmRecord, fmReplay string
	keepGoing          bool
	quick              bool
	worker             string
	leaseTTL           time.Duration
	// prof accumulates phase timings and registry totals for the run-end
	// profile (printed by main when observability is on).
	prof *obs.Profile
}

// runGrid is the cell-addressed path: build the plan for the selection, run
// it through the grid engine (artifacts, resume, sharded record/replay),
// fold, and print whatever completed.
func runGrid(ctx context.Context, sel selections, names, methods []string, cfg experiments.Config, o gridOptions) error {
	if !sel.any() {
		return fmt.Errorf("nothing selected; use -table, -figure, -efficiency, -descriptions or -all")
	}
	if o.runDir != "" && o.resume != "" {
		return fmt.Errorf("-resume already names the run directory; drop -run-dir")
	}
	if o.fmRecord != "" && o.fmReplay != "" {
		return fmt.Errorf("-fm-record and -fm-replay are mutually exclusive (a replayed run makes no upstream calls to record)")
	}
	if o.worker != "" && o.runDir == "" && o.resume == "" {
		return fmt.Errorf("-worker needs -run-dir (or -resume): the run directory's leases and artifacts are how workers coordinate")
	}

	runner := &grid.Runner{
		Config:    cfg,
		Dir:       o.runDir,
		Resume:    false,
		KeepGoing: o.keepGoing,
		Worker:    o.worker,
		LeaseTTL:  o.leaseTTL,
		Name:      strings.Join(names, ","),
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "grid: "+format+"\n", args...)
		},
	}
	if o.resume != "" {
		runner.Dir, runner.Resume = o.resume, true
	}

	switch {
	case o.fmRecord != "":
		stores, err := fmgate.NewRecordStoreSet(o.fmRecord, fmgate.StoreSetManifest{
			ConfigHash: cfg.Fingerprint(),
			Seed:       cfg.Seed,
			Budget:     cfg.SamplingBudget,
		})
		if err != nil {
			return err
		}
		defer stores.Close()
		runner.Stores = stores
	case isDir(o.fmReplay):
		stores, err := fmgate.OpenReplayStoreSet(o.fmReplay, cfg.Fingerprint())
		if err != nil {
			return err
		}
		defer stores.Close()
		runner.Stores = stores
	case o.fmReplay != "":
		// Legacy monolithic recording file: SMARTFEAT cells only.
		cfg.FMReplayPath = o.fmReplay
		runner.Config = cfg
	}

	endPlan := o.prof.Phase("plan")
	gsel := sel.grid()
	plan := gsel.Plan(names, methods)
	endPlan()

	endExec := o.prof.Phase("execute")
	result, runErr := runner.Run(ctx, plan)
	endExec()
	if runErr != nil {
		// Infrastructure failures before any cell was scheduled (config-hash
		// mismatch, pre-existing manifest, bad plan) return a plain error —
		// rendering an all-'?' grid and a resume hint for them would
		// contradict the advice in the error itself.
		var cellErr *experiments.RunError
		if !errors.As(runErr, &cellErr) {
			return runErr
		}
	}

	// Fold and print whatever the run completed, even on error: a fail-fast
	// or interrupted grid still renders its finished cells (with distinct
	// failed/skipped markers), and the error below says what is missing.
	endFold := o.prof.Phase("fold")
	var figure2 string
	if sel.figure == 2 || sel.all {
		// The walkthrough is a fixed six-row trace, not a grid cell; it runs
		// here and Render places its text in table order.
		out, err := experiments.Figure2Walkthrough(ctx, cfg)
		switch {
		case err != nil && runErr == nil:
			return err
		case err != nil:
			// Don't let the grid error swallow an independent figure-2
			// failure silently.
			fmt.Fprintln(os.Stderr, "experiments: figure 2:", err)
		default:
			figure2 = out
		}
	}
	gsel.Render(os.Stdout, result, names, cfg, figure2)
	endFold()

	// Per-cell cost attribution rolls up into the run profile; the artifacts
	// are the exact ledger, so the profile needs no separate accounting.
	var cost float64
	for i := range result.Outcomes {
		if a := result.Outcomes[i].Artifact; a != nil && a.Method != nil {
			cost += a.Method.FMUsage.SimCostUSD
		}
	}
	o.prof.SetCost(cost)
	if runner.Dir != "" {
		o.prof.Fill()
		if err := o.prof.WriteFile(filepath.Join(runner.Dir, "profile.json")); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: writing run profile:", err)
		}
	}

	counts := result.Counts()
	fmt.Fprintf(os.Stderr, "grid: %d cells: %d completed, %d resumed, %d failed, %d skipped, %d interrupted, %d on other workers\n",
		len(plan), counts[grid.StatusCompleted], counts[grid.StatusResumed],
		counts[grid.StatusFailed], counts[grid.StatusSkipped], counts[grid.StatusInterrupted],
		counts[grid.StatusLeased])
	if runErr != nil && runner.Dir != "" {
		fmt.Fprintf(os.Stderr, "grid: resume with: experiments -resume %s %s\n",
			runner.Dir, replaySelectionHint(sel, o, names, methods))
	}
	return runErr
}

// replaySelectionHint reconstructs the flags a resume needs to re-plan
// exactly the interrupted grid — the selection switches, the dataset and
// method restrictions, and the FM store mode (the config hash covers none
// of those, so omitting any would silently resume a different run: a larger
// grid, or remaining cells recorded/replayed in the wrong mode).
func replaySelectionHint(sel selections, o gridOptions, names, methods []string) string {
	var parts []string
	if sel.all {
		parts = append(parts, "-all")
	}
	if sel.table != 0 {
		parts = append(parts, "-table "+strconv.Itoa(sel.table))
	}
	if sel.figure != 0 {
		parts = append(parts, "-figure "+strconv.Itoa(sel.figure))
	}
	if sel.efficiency {
		parts = append(parts, "-efficiency")
	}
	if sel.descriptions {
		parts = append(parts, "-descriptions")
	}
	if o.quick {
		parts = append(parts, "-quick")
	}
	if len(names) > 0 && len(names) != len(datasets.Names()) {
		parts = append(parts, "-datasets '"+strings.Join(names, ",")+"'")
	}
	if methods != nil {
		var rest []string
		for _, m := range methods {
			if m != experiments.MethodInitial {
				rest = append(rest, m)
			}
		}
		parts = append(parts, "-methods '"+strings.Join(rest, ",")+"'")
	}
	if o.fmRecord != "" {
		parts = append(parts, "-fm-record "+o.fmRecord)
	}
	if o.fmReplay != "" {
		parts = append(parts, "-fm-replay "+o.fmReplay)
	}
	return strings.Join(parts, " ")
}

// isDir reports whether path names an existing directory (the sharded
// record/replay layout; a plain file is a legacy monolithic recording).
func isDir(path string) bool {
	if path == "" {
		return false
	}
	info, err := os.Stat(path)
	return err == nil && info.IsDir()
}
