// Command experiments regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	experiments -table 3            # dataset statistics
//	experiments -table 4            # average AUC comparison (also prints 5)
//	experiments -table 6            # feature importance shares (Tennis)
//	experiments -table 7            # operator ablation (Tennis)
//	experiments -figure 1           # row-level vs feature-level cost
//	experiments -figure 2           # Bucketized Age walkthrough
//	experiments -efficiency         # per-method timing
//	experiments -descriptions       # feature-description ablation
//	experiments -all                # everything
//
// Add -quick for the scaled-down configuration, -datasets to restrict the
// comparison to a comma-separated subset, and -workers to bound the
// (dataset × method × model) evaluation parallelism.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"smartfeat/internal/datasets"
	"smartfeat/internal/experiments"
)

func main() {
	table := flag.Int("table", 0, "table number to regenerate (3, 4, 5, 6, 7)")
	figure := flag.Int("figure", 0, "figure number to regenerate (1, 2)")
	efficiency := flag.Bool("efficiency", false, "run the efficiency comparison")
	descriptions := flag.Bool("descriptions", false, "run the feature-description ablation")
	all := flag.Bool("all", false, "run everything")
	quick := flag.Bool("quick", false, "use the scaled-down configuration")
	seed := flag.Int64("seed", 0, "override the experiment seed")
	names := flag.String("datasets", "", "comma-separated dataset subset (default: all eight)")
	workers := flag.Int("workers", 0, "evaluation parallelism: (dataset × method) cells and per-model training (0 = GOMAXPROCS, 1 = sequential; results are identical at any setting)")
	fmCache := flag.Bool("fm-cache", false, "cache deterministic FM completions inside each SMARTFEAT cell (content-addressed LRU)")
	fmReplay := flag.String("fm-replay", "", "replay SMARTFEAT FM completions from an fmgate recording (zero simulated cost); the recording must cover the selected cells — record with cmd/smartfeat using this run's seed/budget and restrict to the matching -datasets subset (full-grid recording sharding is a ROADMAP item); uncovered prompts fail their cell loudly rather than falling back to paid traffic")
	fmConcurrency := flag.Int("fm-concurrency", 0, "bound on each gateway's concurrent in-flight FM calls (0 = default 8)")
	flag.Parse()

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Workers = *workers
	if *fmCache {
		cfg.FMCacheSize = 1 << 14
	}
	cfg.FMReplayPath = *fmReplay
	cfg.FMConcurrency = *fmConcurrency
	selected := datasets.Names()
	if *names != "" {
		selected = nil
		for _, n := range strings.Split(*names, ",") {
			selected = append(selected, strings.TrimSpace(n))
		}
	}
	if err := run(*table, *figure, *efficiency, *descriptions, *all, selected, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(table, figure int, efficiency, descriptions, all bool, names []string, cfg experiments.Config) error {
	did := false
	if table == 3 || all {
		fmt.Println(experiments.Table3String(cfg))
		did = true
	}
	if table == 4 || table == 5 || all {
		avg, median, err := experiments.RunComparison(names, cfg)
		if err != nil {
			return err
		}
		fmt.Println(avg)
		fmt.Println(median)
		did = true
	}
	if table == 6 || all {
		rows, err := experiments.Table6FeatureImportance("Tennis", cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.Table6String(rows))
		did = true
	}
	if table == 7 || all {
		rows, err := experiments.Table7OperatorAblation("Tennis", cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.Table7String(rows, cfg.Models))
		did = true
	}
	if figure == 1 || all {
		sizes := []int{100, 1000, 10000, 41189}
		if all {
			sizes = []int{100, 1000, 10000}
		}
		points, err := experiments.Figure1InteractionCosts(sizes, cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.Figure1String(points))
		did = true
	}
	if figure == 2 || all {
		out, err := experiments.Figure2Walkthrough(cfg)
		if err != nil {
			return err
		}
		fmt.Println(out)
		did = true
	}
	if efficiency || all {
		rows, err := experiments.RunEfficiency(names, cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.EfficiencyString(rows))
		did = true
	}
	if descriptions || all {
		abl, err := experiments.RunDescriptionsAblation("Tennis", cfg)
		if err != nil {
			return err
		}
		fmt.Println(abl)
		did = true
	}
	if !did {
		return fmt.Errorf("nothing selected; use -table, -figure, -efficiency, -descriptions or -all")
	}
	return nil
}
