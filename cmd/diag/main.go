// Command diag is a scratch diagnostic harness used while calibrating the
// dataset generators and the simulated FM against the paper's tables. It is
// not part of the public deliverables.
package main

import (
	"context"
	"fmt"
	"os"
	"sort"

	"smartfeat/internal/core"
	"smartfeat/internal/datasets"
	"smartfeat/internal/experiments"
	"smartfeat/internal/fm"
)

func main() {
	cfg := experiments.QuickConfig()
	which := "Tennis"
	if len(os.Args) > 1 {
		which = os.Args[1]
	}
	d, err := datasets.Load(which, cfg.Seed)
	if err != nil {
		panic(err)
	}
	clean := d.Frame.DropNA()

	ev, err := experiments.EvalDataset(context.Background(), which, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("=== %s: initial per-model AUC ===\n", which)
	printAUCs(ev.Initial.AUCs)
	for _, m := range experiments.Methods() {
		res := ev.Methods[m]
		fmt.Printf("=== %s (gen=%d sel=%d err=%v) ===\n", m, res.Generated, res.Selected, res.Err)
		printAUCs(res.AUCs)
		for model, reason := range res.FailedModels {
			fmt.Printf("  FAILED %s: %s\n", model, reason)
		}
	}

	fmt.Println("=== SMARTFEAT feature list ===")
	opts := core.Options{
		Target: d.Target, TargetDescription: d.TargetDescription,
		Descriptions: d.Descriptions, Model: "RF",
		SelectorFM:     fm.NewGPT4Sim(cfg.Seed, cfg.FMErrorRate),
		GeneratorFM:    fm.NewGPT35Sim(cfg.Seed+1, cfg.FMErrorRate),
		SamplingBudget: cfg.SamplingBudget,
	}
	res, err := core.Run(clean, opts)
	if err != nil {
		panic(err)
	}
	for _, g := range res.Features {
		fmt.Printf("  %-55s %-10s %-9s %v\n", g.Candidate.Name, g.Candidate.Operator, g.Status, g.Candidate.Inputs)
		if g.Status == "failed" {
			fmt.Printf("      %s\n", g.Detail)
		}
	}
	fmt.Println("dropped:", res.DroppedOriginals)
}

func printAUCs(aucs map[string]float64) {
	keys := make([]string, 0, len(aucs))
	for k := range aucs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sum := 0.0
	for _, k := range keys {
		fmt.Printf("  %-4s %.2f\n", k, aucs[k])
		sum += aucs[k]
	}
	if len(keys) > 0 {
		fmt.Printf("  avg  %.2f\n", sum/float64(len(keys)))
	}
}
