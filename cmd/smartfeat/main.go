// Command smartfeat runs SMARTFEAT feature engineering on a CSV file and
// writes the augmented dataset to stdout (or -out).
//
// Usage:
//
//	smartfeat -in data.csv -target Label [-model RF] [-budget 10] [-out out.csv]
//	smartfeat -dataset Tennis            # run on a built-in evaluation dataset
//	smartfeat -dataset Tennis -evaluate  # also score initial vs augmented AUC
//
// A report of every candidate feature (operator, status, inputs) and the
// foundation-model usage accounting is printed to stderr. With -evaluate,
// the five downstream models are trained on the parallel columnar harness
// before and after feature engineering and the per-model AUCs are compared.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"smartfeat/internal/core"
	"smartfeat/internal/dataframe"
	"smartfeat/internal/datasets"
	"smartfeat/internal/experiments"
	"smartfeat/internal/fm"
)

func main() {
	in := flag.String("in", "", "input CSV file with a header row")
	dataset := flag.String("dataset", "", "use a built-in evaluation dataset instead of -in")
	target := flag.String("target", "", "prediction-class column (required with -in)")
	model := flag.String("model", "RF", "downstream model shown to the FM (LR, NB, RF, ET, DNN)")
	budget := flag.Int("budget", 10, "sampling budget per operator family")
	seed := flag.Int64("seed", 42, "random seed for the simulated FM")
	errorRate := flag.Float64("error-rate", 0.02, "simulated FM generation-error rate")
	out := flag.String("out", "", "output CSV path (default stdout)")
	rowBudget := flag.Float64("row-budget", 0, "USD budget permitting full row-level completions")
	evaluate := flag.Bool("evaluate", false, "train the downstream models on the initial and augmented frames and report AUCs to stderr")
	workers := flag.Int("workers", 0, "model-training parallelism for -evaluate (0 = GOMAXPROCS)")
	flag.Parse()
	if err := run(*in, *dataset, *target, *model, *budget, *seed, *errorRate, *out, *rowBudget, *evaluate, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "smartfeat:", err)
		os.Exit(1)
	}
}

func run(in, dataset, target, model string, budget int, seed int64, errorRate float64, out string, rowBudget float64, evaluate bool, workers int) error {
	var frame *dataframe.Frame
	descriptions := map[string]string{}
	targetDesc := ""
	switch {
	case dataset != "":
		d, err := datasets.Load(dataset, seed)
		if err != nil {
			return err
		}
		frame = d.Frame
		target = d.Target
		targetDesc = d.TargetDescription
		descriptions = d.Descriptions
	case in != "":
		if target == "" {
			return fmt.Errorf("-target is required with -in")
		}
		file, err := os.Open(in)
		if err != nil {
			return err
		}
		defer file.Close()
		frame, err = dataframe.ReadCSV(file)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("provide -in FILE or -dataset NAME")
	}

	clean := frame.DropNA()
	res, err := core.Run(clean, core.Options{
		Target:            target,
		TargetDescription: targetDesc,
		Descriptions:      descriptions,
		Model:             model,
		SelectorFM:        fm.NewGPT4Sim(seed, errorRate),
		GeneratorFM:       fm.NewGPT35Sim(seed+1, errorRate),
		SamplingBudget:    budget,
		RowLevelBudgetUSD: rowBudget,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(os.Stderr, "SMARTFEAT: %d candidates, %d features kept, %d originals dropped, %s elapsed\n",
		len(res.Features), len(res.AddedColumns()), len(res.DroppedOriginals), res.Elapsed.Round(1e6))
	for _, g := range res.Features {
		fmt.Fprintf(os.Stderr, "  %-45s %-11s %-18s inputs=%v\n",
			g.Candidate.Name, g.Candidate.Operator, g.Status, g.Candidate.Inputs)
		if g.Status == core.StatusDataSource || g.Status == core.StatusRowLevelSkipped {
			fmt.Fprintf(os.Stderr, "      %s\n", g.Detail)
		}
	}
	fmt.Fprintf(os.Stderr, "selector  FM: %s\n", res.SelectorUsage)
	fmt.Fprintf(os.Stderr, "generator FM: %s\n", res.GeneratorUsage)

	if evaluate {
		if err := evaluateAUCs(clean, res.Frame, target, seed, workers); err != nil {
			return err
		}
	}

	w := os.Stdout
	if out != "" {
		file, err := os.Create(out)
		if err != nil {
			return err
		}
		defer file.Close()
		w = file
	}
	return res.Frame.WriteCSV(w)
}

// evaluateAUCs trains the five downstream models on the initial and
// augmented frames (§4.1 protocol, parallel columnar harness) and prints the
// per-model AUC comparison to stderr.
func evaluateAUCs(initial, augmented *dataframe.Frame, target string, seed int64, workers int) error {
	cfg := experiments.QuickConfig()
	cfg.Seed = seed
	cfg.Workers = workers
	before, beforeFail, err := experiments.EvaluateFrame(initial, target, cfg.Models, cfg)
	if err != nil {
		return err
	}
	after, afterFail, err := experiments.EvaluateFrame(augmented, target, cfg.Models, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "downstream AUC (×100, 75/25 split):\n")
	names := append([]string(nil), cfg.Models...)
	sort.Strings(names)
	for _, m := range names {
		b, bok := before[m]
		a, aok := after[m]
		switch {
		case bok && aok:
			fmt.Fprintf(os.Stderr, "  %-4s initial %6.2f → augmented %6.2f (%+.2f)\n", m, b, a, a-b)
		case bok:
			fmt.Fprintf(os.Stderr, "  %-4s initial %6.2f → augmented failed: %s\n", m, b, afterFail[m])
		case aok:
			// Feature engineering rescued a model the raw frame broke.
			fmt.Fprintf(os.Stderr, "  %-4s initial failed (%s) → augmented %6.2f\n", m, beforeFail[m], a)
		default:
			fmt.Fprintf(os.Stderr, "  %-4s initial failed: %s\n", m, beforeFail[m])
		}
	}
	return nil
}
