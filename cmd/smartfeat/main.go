// Command smartfeat runs SMARTFEAT feature engineering on a CSV file and
// writes the augmented dataset to stdout (or -out).
//
// Usage:
//
//	smartfeat -in data.csv -target Label [-model RF] [-budget 10] [-out out.csv]
//	smartfeat -dataset Tennis            # run on a built-in evaluation dataset
//	smartfeat -dataset Tennis -evaluate  # also score initial vs augmented AUC
//
// All foundation-model traffic is routed through the fmgate gateway:
//
//	-fm-concurrency N   bound on in-flight FM calls (row-level fan-out)
//	-fm-cache           content-addressed completion cache for deterministic
//	                    prompts (function generation, row-level completions)
//	-fm-record PATH     record every upstream completion to PATH (JSONL
//	                    file), or — with -fm-cell — into one shard of a
//	                    sharded recording directory
//	-fm-replay PATH     replay a recording byte-identically: the simulators
//	                    are never called and the usage report shows $0.00
//	                    (keep -seed as recorded — it also generates the
//	                    synthetic -dataset and therefore the prompts). A
//	                    directory is a cmd/experiments -fm-record shard set:
//	                    pass -fm-cell (or -dataset, whose SMARTFEAT cell is
//	                    the default) to pick the shard — a single cell of a
//	                    full grid recording replays through the CLI, since
//	                    the grid's selector/generator keys match the CLI's
//	                    when seed/budget/error-rate agree
//	-fm-cell KEY        shard key inside a sharded recording directory
//	                    (default <dataset>__SMARTFEAT)
//
// Observability (see PERF.md, "Observability"):
//
//	-metrics-addr ADDR  serve /metrics (Prometheus text; ?format=json) and
//	                    /debug/pprof for the duration of the run
//	-metrics-linger D   keep the metrics server up D after a successful run
//	-trace PATH         record a span trace (fm.call, fm.attempt, ml.fit)
//	                    to PATH; convert with tools/traceview
//
// A report of every candidate feature (operator, status, inputs), the
// foundation-model usage accounting and the gateway traffic counters is
// printed to stderr. Ctrl-C cancels in-flight FM calls and prints the usage
// of the spend so far instead of dying mid-write. With -evaluate, the five
// downstream models are trained on the parallel columnar harness before and
// after feature engineering and the per-model AUCs are compared.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"syscall"
	"time"

	"smartfeat/internal/core"
	"smartfeat/internal/dataframe"
	"smartfeat/internal/datasets"
	"smartfeat/internal/experiments"
	"smartfeat/internal/fm"
	"smartfeat/internal/fmgate"
	"smartfeat/internal/lease"
	"smartfeat/internal/obs"
)

// cliOptions carries the parsed flags.
type cliOptions struct {
	in, dataset, target, model string
	budget                     int
	seed                       int64
	errorRate                  float64
	out                        string
	rowBudget                  float64
	evaluate                   bool
	workers                    int
	fmCache                    bool
	fmCacheSize                int
	fmCacheDir                 string
	fmRecord, fmReplay         string
	fmCell                     string
	fmConcurrency              int
	pool                       *fmgate.PoolSpec
}

// cellKey resolves the shard key for sharded record/replay: the explicit
// -fm-cell, else the -dataset's SMARTFEAT comparison cell.
func (o cliOptions) cellKey() (string, error) {
	if o.fmCell != "" {
		return o.fmCell, nil
	}
	if o.dataset != "" {
		return o.dataset + "__SMARTFEAT", nil
	}
	return "", fmt.Errorf("a sharded recording directory needs -fm-cell (or -dataset) to pick the shard")
}

func main() {
	var o cliOptions
	flag.StringVar(&o.in, "in", "", "input CSV file with a header row")
	flag.StringVar(&o.dataset, "dataset", "", "use a built-in evaluation dataset instead of -in")
	flag.StringVar(&o.target, "target", "", "prediction-class column (required with -in)")
	flag.StringVar(&o.model, "model", "RF", "downstream model shown to the FM (LR, NB, RF, ET, DNN)")
	flag.IntVar(&o.budget, "budget", 10, "sampling budget per operator family")
	flag.Int64Var(&o.seed, "seed", 42, "random seed for the simulated FM")
	flag.Float64Var(&o.errorRate, "error-rate", 0.02, "simulated FM generation-error rate")
	flag.StringVar(&o.out, "out", "", "output CSV path (default stdout)")
	flag.Float64Var(&o.rowBudget, "row-budget", 0, "USD budget permitting full row-level completions")
	flag.BoolVar(&o.evaluate, "evaluate", false, "train the downstream models on the initial and augmented frames and report AUCs to stderr")
	flag.IntVar(&o.workers, "workers", 0, "model-training parallelism for -evaluate (0 = GOMAXPROCS)")
	flag.BoolVar(&o.fmCache, "fm-cache", false, "cache deterministic FM completions (content-addressed LRU)")
	flag.IntVar(&o.fmCacheSize, "fm-cache-size", 0, "in-process LRU capacity in completions (implies -fm-cache)")
	flag.StringVar(&o.fmCacheDir, "fm-cache-dir", "", "cross-process completion-cache directory: a content-addressed read-through index over FM shard files (e.g. an -fm-record directory or another run's cache dir), serving already-paid-for completions at $0 before calling upstream")
	flag.StringVar(&o.fmRecord, "fm-record", "", "record upstream FM completions to this JSONL file (or, with -fm-cell, into a shard of a recording directory)")
	flag.StringVar(&o.fmReplay, "fm-replay", "", "replay FM completions from a recording (zero simulated cost); a directory replays one shard of a cmd/experiments grid recording")
	flag.StringVar(&o.fmCell, "fm-cell", "", "shard key inside a sharded recording directory (default <dataset>__SMARTFEAT)")
	flag.IntVar(&o.fmConcurrency, "fm-concurrency", 8, "bound on concurrent in-flight FM calls (row-level fan-out)")
	fmBackends := flag.Int("fm-backends", 0, "route FM traffic through a resilient pool of N replica backends (0 = no pool)")
	fmHedge := flag.Duration("fm-hedge", 0, "hedge FM calls: duplicate on a second backend after this delay, first success wins (0 = off)")
	fmDeadline := flag.Duration("fm-deadline", 0, "per-FM-call deadline budget (0 = none)")
	fmBreaker := flag.String("fm-breaker", "", "per-backend circuit breaker as THRESHOLD[:COOLDOWN], e.g. '3:50ms'")
	fmRetries := flag.Int("fm-retries", 0, "gateway retry budget for transient FM errors (0 = fail fast, or 4 when -fm-faults is set)")
	fmFaults := flag.String("fm-faults", "", "per-backend injected fault model, e.g. 'rate=0.1,jitter=4ms,outage=b2:5-25' (keys: rate, ratelimit, hang, malformed, jitter, retryafter, outage)")
	metricsAddr := flag.String("metrics-addr", "", "serve the process metrics registry ('/metrics', Prometheus text or ?format=json) and /debug/pprof on this address for the duration of the run (':0' picks a free port)")
	metricsLinger := flag.Duration("metrics-linger", 0, "keep the -metrics-addr server up this long after a successful run (lets CI scrape a finished run)")
	tracePath := flag.String("trace", "", "record a span trace (FM calls, model fits) to this JSONL file; convert with tools/traceview. Output is byte-identical with or without tracing")
	flag.Parse()

	if *fmBackends > 0 {
		spec := &fmgate.PoolSpec{
			Backends: *fmBackends,
			Hedge:    *fmHedge,
			Deadline: *fmDeadline,
			Retries:  *fmRetries,
			Seed:     o.seed,
		}
		var err error
		if *fmBreaker != "" {
			if spec.Breaker, err = fmgate.ParseBreaker(*fmBreaker); err != nil {
				fmt.Fprintln(os.Stderr, "smartfeat:", err)
				os.Exit(2)
			}
		}
		if *fmFaults != "" {
			if spec.Faults, err = fmgate.ParseFaultSpec(*fmFaults); err != nil {
				fmt.Fprintln(os.Stderr, "smartfeat:", err)
				os.Exit(2)
			}
			if o.fmRecord != "" && spec.Faults.Malformed > 0 {
				fmt.Fprintln(os.Stderr, "smartfeat: -fm-faults malformed>0 with -fm-record would record corrupted completions; record clean traffic and inject faults on replay")
				os.Exit(2)
			}
		}
		o.pool = spec
	} else if *fmHedge != 0 || *fmDeadline != 0 || *fmBreaker != "" || *fmFaults != "" || *fmRetries != 0 {
		fmt.Fprintln(os.Stderr, "smartfeat: -fm-hedge/-fm-deadline/-fm-breaker/-fm-faults/-fm-retries need -fm-backends >= 1")
		os.Exit(2)
	}

	// Ctrl-C / SIGTERM cancels in-flight FM calls; the run loop below then
	// reports partial usage accounting instead of dying mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *metricsAddr != "" {
		srv, err := obs.ListenAndServe(*metricsAddr, obs.Default)
		if err != nil {
			fmt.Fprintln(os.Stderr, "smartfeat:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "obs: serving /metrics and /debug/pprof on http://%s\n", srv.Addr)
		defer func() {
			if *metricsLinger > 0 {
				fmt.Fprintf(os.Stderr, "obs: metrics server lingering %s (scrape http://%s/metrics)\n", *metricsLinger, srv.Addr)
				time.Sleep(*metricsLinger)
			}
			srv.Close()
		}()
	}
	if *tracePath != "" {
		tr, err := obs.Create(*tracePath, "smartfeat")
		if err != nil {
			fmt.Fprintln(os.Stderr, "smartfeat:", err)
			os.Exit(1)
		}
		defer tr.Close()
		ctx = obs.WithTracer(ctx, tr)
		fmt.Fprintf(os.Stderr, "obs: tracing spans to %s\n", *tracePath)
	}

	if err := run(ctx, o); err != nil {
		fmt.Fprintln(os.Stderr, "smartfeat:", err)
		if errors.Is(err, context.Canceled) {
			os.Exit(130)
		}
		os.Exit(1)
	}
}

// buildRouter wires the per-role gateways from the CLI's fm flags. Both
// roles share one record/replay store; keys embed the model name, so a
// single recording (file or shard) replays a whole selector+generator run.
// The returned closer flushes whatever store backing was opened.
func buildRouter(o cliOptions) (*fmgate.Router, io.Closer, error) {
	gwOpts := fmgate.Options{Concurrency: o.fmConcurrency}
	if o.fmCache {
		gwOpts.CacheSize = 1 << 14
	}
	if o.fmCacheSize > 0 {
		gwOpts.CacheSize = o.fmCacheSize
	}
	var closer io.Closer
	var err error
	switch {
	case o.fmReplay != "" && o.fmRecord != "":
		return nil, nil, fmt.Errorf("-fm-replay and -fm-record are mutually exclusive (a replayed run makes no upstream calls to record)")
	case isDir(o.fmReplay):
		// One shard of a cmd/experiments grid recording. The manifest's
		// config hash covers the experiments protocol, which the CLI cannot
		// recompute — compatibility rests on the operator matching the
		// recorded seed/budget/error-rate flags, so surface the manifest's
		// identity instead of checking a hash. A prompt the shard does not
		// cover still fails loudly at call time.
		cell, cerr := o.cellKey()
		if cerr != nil {
			return nil, nil, cerr
		}
		set, serr := fmgate.OpenReplayStoreSet(o.fmReplay, "")
		if serr != nil {
			return nil, nil, serr
		}
		man := set.Manifest()
		fmt.Fprintf(os.Stderr, "replaying shard %s of %s (recorded seed %d, budget %d, config %s)\n",
			cell, o.fmReplay, man.Seed, man.Budget, man.ConfigHash)
		gwOpts.Store, err = set.Shard(cell)
		gwOpts.Replay = true
		closer = set
	case o.fmReplay != "":
		gwOpts.Store, err = fmgate.OpenReplayStore(o.fmReplay)
		gwOpts.Replay = true
		closer = gwOpts.Store
	case o.fmRecord != "" && (o.fmCell != "" || isDir(o.fmRecord)):
		// Sharded recording: same shard-key resolution as the replay branch
		// (-fm-cell, else the -dataset's SMARTFEAT cell).
		cell, cerr := o.cellKey()
		if cerr != nil {
			return nil, nil, cerr
		}
		var set *fmgate.StoreSet
		set, err = fmgate.NewRecordStoreSet(o.fmRecord, fmgate.StoreSetManifest{Seed: o.seed, Budget: o.budget})
		if err == nil {
			gwOpts.Store, err = set.Shard(cell)
			closer = set
		}
	case o.fmRecord != "":
		gwOpts.Store, err = fmgate.NewRecordStore(o.fmRecord)
		closer = gwOpts.Store
	}
	if err != nil {
		return nil, nil, err
	}
	if o.fmCacheDir != "" && !gwOpts.Replay {
		// Disk tier of the completion cache: checked after the LRU, before
		// upstream. The CLI cannot recompute the experiments config hash, so
		// — as with shard replay above — the manifest is accepted as-is and
		// compatibility rests on the operator matching the recorded flags.
		dc, derr := fmgate.OpenDiskCache(o.fmCacheDir, fmgate.DiskCacheOptions{
			Live:   gwOpts.Store == nil,
			Locker: lease.NewMutex(filepath.Join(o.fmCacheDir, "manifest.json.lock"), 0),
		})
		if derr != nil {
			if closer != nil {
				closer.Close()
			}
			return nil, nil, derr
		}
		gwOpts.Disk = dc
		closer = closers{closer, dc}
	}
	// Each role gets its own pool (breakers and fault sequences are per
	// role); a nil o.pool builds plain gateways.
	selector, err := fmgate.PoolGateway(fm.NewGPT4Sim(o.seed, o.errorRate), gwOpts, o.pool)
	if err != nil {
		return nil, nil, err
	}
	generator, err := fmgate.PoolGateway(fm.NewGPT35Sim(o.seed+1, o.errorRate), gwOpts, o.pool)
	if err != nil {
		return nil, nil, err
	}
	router := fmgate.NewRouter().
		Route(fmgate.RoleSelector, selector).
		Route(fmgate.RoleGenerator, generator)
	return router, closer, nil
}

// closers closes a stack of store backings, keeping the first error.
type closers []io.Closer

func (cs closers) Close() error {
	var first error
	for _, c := range cs {
		if c == nil {
			continue
		}
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// isDir reports whether path names an existing directory.
func isDir(path string) bool {
	if path == "" {
		return false
	}
	info, err := os.Stat(path)
	return err == nil && info.IsDir()
}

func run(ctx context.Context, o cliOptions) error {
	var frame *dataframe.Frame
	descriptions := map[string]string{}
	targetDesc := ""
	target := o.target
	switch {
	case o.dataset != "":
		d, err := datasets.Load(o.dataset, o.seed)
		if err != nil {
			return err
		}
		frame = d.Frame
		target = d.Target
		targetDesc = d.TargetDescription
		descriptions = d.Descriptions
	case o.in != "":
		if target == "" {
			return fmt.Errorf("-target is required with -in")
		}
		file, err := os.Open(o.in)
		if err != nil {
			return err
		}
		defer file.Close()
		frame, err = dataframe.ReadCSV(file)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("provide -in FILE or -dataset NAME")
	}

	router, storeCloser, err := buildRouter(o)
	if err != nil {
		return err
	}
	if storeCloser != nil {
		defer storeCloser.Close()
	}

	clean := frame.DropNA()
	res, err := core.RunContext(ctx, clean, core.Options{
		Target:            target,
		TargetDescription: targetDesc,
		Descriptions:      descriptions,
		Model:             o.model,
		SelectorFM:        router.Gate(fmgate.RoleSelector),
		GeneratorFM:       router.Gate(fmgate.RoleGenerator),
		SamplingBudget:    o.budget,
		RowLevelBudgetUSD: o.rowBudget,
	})
	if err != nil {
		if errors.Is(err, context.Canceled) && res != nil {
			// Interrupted: report what the aborted run cost, skip the write.
			fmt.Fprintf(os.Stderr, "interrupted after %s: %d candidates generated\n",
				res.Elapsed.Round(1e6), len(res.Features))
			fmt.Fprintln(os.Stderr, "partial usage:")
			fmt.Fprintln(os.Stderr, router.Report())
		}
		return err
	}

	fmt.Fprintf(os.Stderr, "SMARTFEAT: %d candidates, %d features kept, %d originals dropped, %s elapsed\n",
		len(res.Features), len(res.AddedColumns()), len(res.DroppedOriginals), res.Elapsed.Round(1e6))
	for _, g := range res.Features {
		fmt.Fprintf(os.Stderr, "  %-45s %-11s %-18s inputs=%v\n",
			g.Candidate.Name, g.Candidate.Operator, g.Status, g.Candidate.Inputs)
		if g.Status == core.StatusDataSource || g.Status == core.StatusRowLevelSkipped {
			fmt.Fprintf(os.Stderr, "      %s\n", g.Detail)
		}
	}
	fmt.Fprintln(os.Stderr, router.Report())

	if o.evaluate {
		if err := evaluateAUCs(ctx, clean, res.Frame, target, o.seed, o.workers); err != nil {
			return err
		}
	}

	w := os.Stdout
	if o.out != "" {
		file, err := os.Create(o.out)
		if err != nil {
			return err
		}
		defer file.Close()
		w = file
	}
	return res.Frame.WriteCSV(w)
}

// evaluateAUCs trains the five downstream models on the initial and
// augmented frames (§4.1 protocol, parallel columnar harness) and prints the
// per-model AUC comparison to stderr.
func evaluateAUCs(ctx context.Context, initial, augmented *dataframe.Frame, target string, seed int64, workers int) error {
	cfg := experiments.QuickConfig()
	cfg.Seed = seed
	cfg.Workers = workers
	before, beforeFail, err := experiments.EvaluateFrame(ctx, initial, target, cfg.Models, cfg)
	if err != nil {
		return err
	}
	after, afterFail, err := experiments.EvaluateFrame(ctx, augmented, target, cfg.Models, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "downstream AUC (×100, 75/25 split):\n")
	names := append([]string(nil), cfg.Models...)
	sort.Strings(names)
	for _, m := range names {
		b, bok := before[m]
		a, aok := after[m]
		switch {
		case bok && aok:
			fmt.Fprintf(os.Stderr, "  %-4s initial %6.2f → augmented %6.2f (%+.2f)\n", m, b, a, a-b)
		case bok:
			fmt.Fprintf(os.Stderr, "  %-4s initial %6.2f → augmented failed: %s\n", m, b, afterFail[m])
		case aok:
			// Feature engineering rescued a model the raw frame broke.
			fmt.Fprintf(os.Stderr, "  %-4s initial failed (%s) → augmented %6.2f\n", m, beforeFail[m], a)
		default:
			fmt.Fprintf(os.Stderr, "  %-4s initial failed: %s\n", m, beforeFail[m])
		}
	}
	return nil
}
