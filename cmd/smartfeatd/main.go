// Command smartfeatd serves feature-construction/grid jobs over HTTP — the
// long-running front door onto the machinery cmd/experiments drives one-shot.
//
// Usage:
//
//	smartfeatd -addr :8080 -run-root runs/
//
// # API
//
//	POST /v1/jobs             submit a job: {"name": "t4", "spec": {"table": 4,
//	                          "quick": true, "datasets": ["Diabetes"]}}. The
//	                          spec mirrors the experiments CLI's flags (table,
//	                          figure, efficiency, descriptions, all, quick,
//	                          seed, datasets, methods, models, workers).
//	                          202 on admission, 200 on an idempotent resubmit,
//	                          400 on a bad spec, 429 + Retry-After when the
//	                          admission queue is full, 503 while draining.
//	                          The X-Tenant header keys per-tenant round-robin
//	                          fairness in the queue.
//	GET  /v1/jobs             list jobs
//	GET  /v1/jobs/{id}        status, with per-cell progress folded live from
//	                          the job's run-directory manifest
//	GET  /v1/jobs/{id}/result the folded tables (text/plain) once completed —
//	                          byte-identical to the experiments CLI's stdout
//	                          for the same selection; ?cell=KEY streams one
//	                          cell's raw artifact JSON instead
//	GET  /healthz             liveness (503 while draining)
//	GET  /metrics             the process obs registry (Prometheus text;
//	                          ?format=json), serve_* series included
//
// # Jobs and the run root
//
// Each job executes through the grid engine in worker mode against
// <run-root>/<job-id>: per-cell artifacts, a progress manifest, leases. The
// run root is therefore the daemon's durable job store — a daemon restarted
// onto the same root re-serves completed cells from their artifacts — and
// its shared medium: N replicas pointed at one root that receive the same
// (name, spec) submission drain that job cooperatively, each executing only
// the cells it claims under the lease protocol. Distinct replicas need
// distinct -worker ids.
//
// # Record/replay
//
// -fm-replay DIR serves every job's FM traffic from a sharded recording
// (made with experiments -fm-record) at $0 simulated cost; submissions the
// recording cannot cover are rejected with 400 up front. -fm-record records
// each job's traffic into <job-dir>/fm. -fm-cache-dir mounts the
// cross-process completion-cache tier for jobs whose config hash matches
// the directory. A replay-backed daemon is fully hermetic — CI's
// `make serve-check` starts one, submits the quick grid, and byte-compares
// the served result against the sequential CLI golden.
//
// # Drain
//
// SIGTERM (or SIGINT) drains: admission stops (submits 503, /healthz 503),
// queued jobs are canceled, and in-flight jobs finish. Past -drain-timeout
// the in-flight jobs are interrupted instead — their runners release
// claimed cell leases and leave resumable run directories — and the daemon
// still exits 0: a drained interrupt is a clean exit, the work is simply
// left for a peer or a restart.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"smartfeat/internal/fmgate"
	"smartfeat/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address (':0' picks a free port; the resolved address is logged)")
	runRoot := flag.String("run-root", "", "job store directory: each job runs in <run-root>/<job-id> (required; replicas cooperating on jobs share it)")
	queueDepth := flag.Int("queue-depth", 64, "admission-queue capacity; a full queue rejects submissions with 429 + Retry-After")
	executors := flag.Int("executors", 1, "jobs executed concurrently (each job's internal parallelism is its spec's workers knob)")
	worker := flag.String("worker", "", "this replica's lease identity; replicas sharing a run root need distinct ids (default smartfeatd-<pid>)")
	leaseTTL := flag.Duration("lease-ttl", 0, "staleness threshold for peer replicas' cell leases (0 = 30s)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain waits for in-flight jobs before interrupting them (leases released, run dirs resumable)")
	retryAfter := flag.Duration("retry-after", 2*time.Second, "backoff hint attached to 429 responses")
	fmReplay := flag.String("fm-replay", "", "serve every job's FM traffic from this sharded recording directory at $0 simulated cost; uncoverable submissions are rejected with 400")
	fmRecord := flag.Bool("fm-record", false, "record each job's FM traffic into <job-dir>/fm (mutually exclusive with -fm-replay)")
	fmCacheDir := flag.String("fm-cache-dir", "", "cross-process completion-cache directory mounted on every config-matching job (rejected with -fm-replay: redundant)")
	fmBackends := flag.Int("fm-backends", 0, "route every job's FM traffic through a resilient pool of N replica backends (circuit breakers, least-loaded selection; 0 = no pool)")
	fmHedge := flag.Duration("fm-hedge", 0, "hedge FM calls: fire a duplicate on a second backend after this delay, first success wins (0 = off; needs -fm-backends >= 2)")
	fmDeadline := flag.Duration("fm-deadline", 0, "per-FM-call deadline budget (0 = none)")
	fmBreaker := flag.String("fm-breaker", "", "per-backend circuit breaker as THRESHOLD[:COOLDOWN], e.g. '3' or '3:50ms'")
	fmRetries := flag.Int("fm-retries", 0, "gateway retry budget for transient FM errors (0 = fail fast, or 4 when -fm-faults is set)")
	fmFaults := flag.String("fm-faults", "", "per-backend injected fault model, e.g. 'rate=0.05,ratelimit=0.05,retryafter=10ms,jitter=1ms,outage=b2:5-25' (needs -fm-backends; transport-only, so replayed results stay byte-identical — how the load simulator exercises back-pressure under chaos)")
	flag.Parse()

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "smartfeatd: "+format+"\n", args...)
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "smartfeatd:", err)
		os.Exit(1)
	}
	if *runRoot == "" {
		fmt.Fprintln(os.Stderr, "smartfeatd: -run-root is required (the run root is the job store)")
		os.Exit(2)
	}
	if *fmReplay != "" && *fmRecord {
		fmt.Fprintln(os.Stderr, "smartfeatd: -fm-record with -fm-replay is contradictory (a replayed job makes no upstream calls to record)")
		os.Exit(2)
	}
	if *fmReplay != "" && *fmCacheDir != "" {
		fmt.Fprintln(os.Stderr, "smartfeatd: -fm-cache-dir with -fm-replay is redundant — replay already serves every completion at $0; drop one")
		os.Exit(2)
	}

	// Pool/fault wiring mirrors the experiments CLI: transport-only, so it
	// composes with -fm-replay (the recording becomes the pool's content
	// source and the chaos layer races transports over it).
	var poolSpec *fmgate.PoolSpec
	if *fmBackends > 0 {
		poolSpec = &fmgate.PoolSpec{
			Backends: *fmBackends,
			Hedge:    *fmHedge,
			Deadline: *fmDeadline,
			Retries:  *fmRetries,
		}
		if *fmBreaker != "" {
			br, err := fmgate.ParseBreaker(*fmBreaker)
			if err != nil {
				fmt.Fprintln(os.Stderr, "smartfeatd:", err)
				os.Exit(2)
			}
			poolSpec.Breaker = br
		}
		if *fmFaults != "" {
			fs, err := fmgate.ParseFaultSpec(*fmFaults)
			if err != nil {
				fmt.Fprintln(os.Stderr, "smartfeatd:", err)
				os.Exit(2)
			}
			if *fmRecord && fs.Malformed > 0 {
				fmt.Fprintln(os.Stderr, "smartfeatd: -fm-faults malformed>0 with -fm-record would record corrupted completions; record clean traffic and inject faults on replay")
				os.Exit(2)
			}
			poolSpec.Faults = fs
		}
	} else if *fmHedge != 0 || *fmDeadline != 0 || *fmBreaker != "" || *fmFaults != "" || *fmRetries != 0 {
		fmt.Fprintln(os.Stderr, "smartfeatd: -fm-hedge/-fm-deadline/-fm-breaker/-fm-faults/-fm-retries need -fm-backends >= 1")
		os.Exit(2)
	}

	s, err := serve.NewServer(serve.Options{
		RunRoot:     *runRoot,
		QueueDepth:  *queueDepth,
		Executors:   *executors,
		Worker:      *worker,
		LeaseTTL:    *leaseTTL,
		RetryAfter:  *retryAfter,
		FMReplayDir: *fmReplay,
		RecordFM:    *fmRecord,
		FMCacheDir:  *fmCacheDir,
		FMPool:      poolSpec,
		Logf:        logf,
	})
	if err != nil {
		fail(err)
	}

	// The daemon serves the whole API — /metrics included — on one address;
	// binding before the startup line resolves ':0' to the actual port.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	httpSrv := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fail(err)
		}
	}()
	logf("serving on http://%s (%s)", ln.Addr(), s.Options())

	// SIGTERM/SIGINT → drain: stop admitting, finish (or past -drain-timeout
	// interrupt and lease-release) in-flight jobs, then exit 0.
	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-sigCtx.Done()
	logf("drain: signal received; finishing in-flight jobs (timeout %s)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := s.Shutdown(drainCtx); err != nil {
		logf("drain: in-flight jobs interrupted after %s (leases released, run dirs resumable)", *drainTimeout)
	} else {
		logf("drain: all jobs settled")
	}
	closeCtx, closeCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer closeCancel()
	_ = httpSrv.Shutdown(closeCtx)
	logf("exit")
}
