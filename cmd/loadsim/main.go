// Command loadsim drives a smartfeatd daemon with a deterministic synthetic
// workload and audits what comes back: per-endpoint latency distributions
// to p99.9, per-tenant fairness, Retry-After-honoring backoff accounting, a
// byte-identity check on every served result, and a /metrics reconciliation
// pass cross-checking the daemon's serve_* counters against the client's
// own ledger. Any drift is a finding; -strict turns findings into exit 1.
//
// Usage:
//
//	loadsim -addr http://127.0.0.1:8080 \
//	    -spec '{"table":4,"quick":true,"datasets":["Diabetes"]}' \
//	    -spec '{"table":4,"quick":true,"datasets":["Diabetes"],"methods":["SMARTFEAT"]}' \
//	    -tenants 2 -clients 2 -ops 12 -seed 1 -strict -out simrun/
//
// Op k submits spec k%N of the N -spec values — by op index, not RNG — so
// two runs with different -seed values submit the same spec multiset and
// their result tables must be byte-identical (the seed perturbs arrival and
// think timing only). This is the invariant `make sim-soak` asserts across
// seeds.
//
// -rate R switches from the closed loop (tenants×clients workers, one op in
// flight each) to open-loop Poisson arrivals at R ops/sec. -out DIR writes
// load_report.json plus tables/table-NN.txt; -bench FILE appends the run as
// go-bench-format lines for tools/benchjson. -metrics-addr serves this
// process's own obs registry (loadsim_* series) while the run is going.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"smartfeat/internal/loadsim"
	"smartfeat/internal/obs"
	"smartfeat/internal/serve"
)

// specFlag collects repeatable -spec values.
type specFlag struct {
	specs []serve.JobSpec
}

func (f *specFlag) String() string { return fmt.Sprintf("%d specs", len(f.specs)) }

func (f *specFlag) Set(v string) error {
	var spec serve.JobSpec
	dec := json.NewDecoder(strings.NewReader(v))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return fmt.Errorf("bad spec %q: %w", v, err)
	}
	f.specs = append(f.specs, spec)
	return nil
}

func main() {
	var specs specFlag
	addr := flag.String("addr", "http://127.0.0.1:8080", "daemon base URL")
	flag.Var(&specs, "spec", "job spec as inline JSON (repeatable; op k submits spec k%N)")
	tenants := flag.Int("tenants", 1, "synthetic tenant count (X-Tenant: sim-t0..)")
	clients := flag.Int("clients", 1, "closed-loop workers per tenant")
	ops := flag.Int("ops", 0, "total submit operations (0 = one per -spec)")
	rate := flag.Float64("rate", 0, "open-loop Poisson arrival rate in ops/sec (0 = closed loop)")
	think := flag.Duration("think", 0, "post-completion think time per worker (jittered ±50%)")
	seed := flag.Int64("seed", 1, "workload RNG seed — timing only, never spec selection")
	retries := flag.Int("retries", 0, "per-op 429/503 retry budget (0 = default 8)")
	spend := flag.Bool("spend", true, "walk completed jobs' artifacts to sum simulated FM spend")
	strict := flag.Bool("strict", false, "exit 1 when the run produces findings (result drift, reconciliation drift, exhausted backoff)")
	out := flag.String("out", "", "output directory for load_report.json and tables/")
	bench := flag.String("bench", "", "append the run as go-bench-format lines to this file (for tools/benchjson)")
	metricsAddr := flag.String("metrics-addr", "", "serve this process's own /metrics (loadsim_* series) on this address during the run")
	quiet := flag.Bool("q", false, "suppress the live progress line")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "loadsim:", err)
		os.Exit(1)
	}
	if len(specs.specs) == 0 {
		fmt.Fprintln(os.Stderr, "loadsim: at least one -spec is required")
		os.Exit(2)
	}

	if *metricsAddr != "" {
		srv, err := obs.ListenAndServe(*metricsAddr, obs.Default)
		if err != nil {
			fail(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "loadsim: metrics on http://%s/metrics\n", srv.Addr)
	}

	cfg := loadsim.Config{
		BaseURL:    *addr,
		Specs:      specs.specs,
		Tenants:    *tenants,
		Clients:    *clients,
		Ops:        *ops,
		Rate:       *rate,
		Think:      *think,
		Seed:       *seed,
		MaxRetries: *retries,
		FetchSpend: *spend,
		Strict:     *strict,
		OutDir:     *out,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "loadsim: "+format+"\n", args...)
		},
	}
	if !*quiet {
		cfg.Progress = os.Stderr
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	rep, err := loadsim.Run(ctx, cfg)
	if rep != nil {
		fmt.Print(rep.Table())
		if *bench != "" {
			f, ferr := os.OpenFile(*bench, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if ferr != nil {
				fail(ferr)
			}
			if _, werr := f.WriteString(rep.BenchLines()); werr != nil {
				fail(werr)
			}
			if cerr := f.Close(); cerr != nil {
				fail(cerr)
			}
		}
	}
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "loadsim: done in %s\n", time.Since(start).Round(time.Millisecond))
}
